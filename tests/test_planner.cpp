// Planner subsystem tests: solve()'s optimum must be bit-equal to a
// brute-force scalar recost() argmin over the same grid, the marginals
// must carry the right signs on bandwidth- vs latency-bound tapes, one
// /plan request must cost exactly one tape pass regardless of grid size,
// and the HTTP surface must map malformed requests to 4xx, not 500.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "engine/cost.hpp"
#include "fleet/http_client.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/http_server.hpp"
#include "planner/planner.hpp"
#include "planner/service.hpp"
#include "planner/wire.hpp"
#include "replay/batch.hpp"
#include "replay/tape.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pbw;

/// A synthetic tape exercising every stats field, including empty and
/// overloaded slot vectors.
replay::StatsTape random_tape(std::uint64_t seed, std::size_t steps) {
  util::Xoshiro256 rng(seed);
  replay::StatsTape tape;
  tape.p = 16;
  tape.seed = seed;
  tape.captured_model = "synthetic";
  for (std::size_t i = 0; i < steps; ++i) {
    engine::SuperstepStats s;
    s.max_work = static_cast<double>(rng.below(1024)) / 8.0;
    s.max_sent = rng.below(256);
    s.max_received = rng.below(256);
    s.total_flits = s.max_sent + rng.below(2048);
    s.max_reads = rng.below(64);
    s.max_writes = rng.below(64);
    s.kappa = rng.below(512);
    s.total_requests = rng.below(128);
    const std::size_t slots = rng.below(6);
    for (std::size_t t = 0; t < slots; ++t) {
      s.slot_counts.push_back(rng.below(48));
    }
    tape.append(s);
    tape.total_flits += s.total_flits;
  }
  return tape;
}

/// A tape whose charge is dominated by communication volume: more local
/// bandwidth (smaller g) or more global bandwidth (larger m) must help.
replay::StatsTape bandwidth_bound_tape() {
  replay::StatsTape tape;
  tape.p = 16;
  tape.seed = 1;
  for (int i = 0; i < 4; ++i) {
    engine::SuperstepStats s;
    s.max_work = 1.0;
    s.max_sent = 1000;
    s.max_received = 1000;
    s.total_flits = 16000;
    s.slot_counts = {16000};  // one slot, heavily overloaded for small m
    tape.append(s);
    tape.total_flits += s.total_flits;
  }
  return tape;
}

/// A tape that does nothing but synchronize: L is the whole bill.
replay::StatsTape latency_bound_tape() {
  replay::StatsTape tape;
  tape.p = 16;
  tape.seed = 1;
  for (int i = 0; i < 64; ++i) {
    engine::SuperstepStats s;
    s.max_work = 0.0;
    tape.append(s);
  }
  return tape;
}

/// An envelope crossing all five families over several values per axis.
planner::Envelope wide_envelope() {
  planner::Envelope envelope;
  envelope.g = {1.0, 2.0, 4.0, 8.0};
  envelope.L = {1.0, 4.0, 16.0};
  envelope.m = {1, 4, 16, 64};
  envelope.penalties = {core::Penalty::kLinear, core::Penalty::kExponential};
  return envelope;
}

// ---- solve() vs brute force ------------------------------------------------

TEST(PlannerSolve, OptimumBitEqualToBruteForceScalarArgmin) {
  const replay::StatsTape tape = random_tape(11, 24);
  const planner::Envelope envelope = wide_envelope();
  const planner::PlanResult result = planner::solve(tape, envelope);

  // Brute force: scalar-recost every enumerated point, track the argmin
  // with the same lowest-index tie-break.
  const std::vector<replay::CostPointSpec> points = envelope.enumerate();
  ASSERT_EQ(points.size(), envelope.grid_size());
  ASSERT_EQ(result.grid_points, points.size());
  std::size_t best_index = 0;
  engine::SimTime best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < points.size(); ++k) {
    const auto model = planner::make_model(tape.p, points[k]);
    const engine::SimTime cost = replay::recost(tape, *model).total_time;
    if (cost < best_cost) {
      best_cost = cost;
      best_index = k;
    }
  }
  EXPECT_EQ(result.best.index, best_index);
  // Bit-equal, not approximately equal: the batched kernel and the scalar
  // recost must charge identically.
  EXPECT_EQ(result.best.cost, best_cost);

  // Every frontier point's cost must also be the scalar recost of its spec.
  for (const planner::PlannedPoint& point : result.frontier) {
    const auto model = planner::make_model(tape.p, point.spec);
    EXPECT_EQ(point.cost, replay::recost(tape, *model).total_time);
    EXPECT_LE(point.cost,
              best_cost * (1.0 + envelope.frontier_percent / 100.0));
  }
  ASSERT_FALSE(result.frontier.empty());
  EXPECT_EQ(result.frontier.front().index, result.best.index);
  EXPECT_GE(result.frontier_total, result.frontier.size());
}

TEST(PlannerSolve, PooledSolveBitEqualToInlineAndReportsKernel) {
  // solve() lends the batch pass a thread pool; the plan must not move
  // by a single bit, and the result must say which kernel charged it.
  const auto tape = random_tape(11, 24);
  planner::Envelope envelope = wide_envelope();
  envelope.m.clear();  // widen m until the batch splits into pool tasks
  for (std::uint32_t m = 1; m <= 1200; ++m) envelope.m.push_back(m);
  const planner::PlanResult inline_plan = planner::solve(tape, envelope);
  util::ThreadPool pool(4);
  const planner::PlanResult pooled = planner::solve(tape, envelope, &pool);
  ASSERT_GT(pooled.grid_points, std::size_t{8192});  // enough to tile
  EXPECT_EQ(pooled.best.index, inline_plan.best.index);
  EXPECT_EQ(pooled.best.cost, inline_plan.best.cost);  // exact, not near
  EXPECT_EQ(pooled.frontier_total, inline_plan.frontier_total);
  ASSERT_EQ(pooled.frontier.size(), inline_plan.frontier.size());
  for (std::size_t i = 0; i < pooled.frontier.size(); ++i) {
    EXPECT_EQ(pooled.frontier[i].index, inline_plan.frontier[i].index);
    EXPECT_EQ(pooled.frontier[i].cost, inline_plan.frontier[i].cost);
  }
  // Attribution: the reported path is the one the dispatcher would pick,
  // and the pooled solve saw the lent threads.
  EXPECT_EQ(inline_plan.simd_path,
            simd::path_name(replay::batch_kernel_path()));
  EXPECT_EQ(inline_plan.batch_threads, 1u);
  EXPECT_GE(pooled.batch_threads, 2u);  // the lent pool actually tiled
}

TEST(PlannerSolve, DeterministicAcrossCalls) {
  const replay::StatsTape tape = random_tape(7, 16);
  const planner::Envelope envelope = wide_envelope();
  const planner::PlanResult a = planner::solve(tape, envelope);
  const planner::PlanResult b = planner::solve(tape, envelope);
  EXPECT_EQ(a.best.index, b.best.index);
  EXPECT_EQ(a.best.cost, b.best.cost);
  EXPECT_EQ(a.dominant_term, b.dominant_term);
  EXPECT_EQ(a.tape_fingerprint, b.tape_fingerprint);
}

TEST(PlannerSolve, MarginalSignsOnBandwidthVsLatencyBoundTapes) {
  // Bandwidth-bound, BSP(g): cost grows with g, so at the g=1 optimum the
  // (one-sided) derivative along g is positive — more local bandwidth
  // (smaller g) would help.
  planner::Envelope bsp_g;
  bsp_g.families = {replay::ModelFamily::kBspG};
  bsp_g.g = {1.0, 2.0, 4.0};
  bsp_g.L = {1.0};
  const planner::PlanResult bw =
      planner::solve(bandwidth_bound_tape(), bsp_g);
  EXPECT_EQ(bw.best.spec.g, 1.0);
  ASSERT_TRUE(bw.dcost_dg.defined);
  EXPECT_GT(bw.dcost_dg.value, 0.0);
  EXPECT_FALSE(bw.dcost_dm.defined);  // BSP(g) does not read m
  EXPECT_EQ(bw.verdict, "local-bandwidth-bound");

  // Bandwidth-bound, BSP(m): the overloaded slot makes cost fall as m
  // grows, so at the large-m optimum dcost/dm is negative.
  planner::Envelope bsp_m;
  bsp_m.families = {replay::ModelFamily::kBspM};
  bsp_m.L = {1.0};
  bsp_m.m = {1, 8, 64};
  bsp_m.penalties = {core::Penalty::kLinear};
  const planner::PlanResult gl =
      planner::solve(bandwidth_bound_tape(), bsp_m);
  EXPECT_EQ(gl.best.spec.m, 64u);
  ASSERT_TRUE(gl.dcost_dm.defined);
  EXPECT_LT(gl.dcost_dm.value, 0.0);

  // Latency-bound: g is irrelevant (no communication), L is the bill.
  const planner::PlanResult lat =
      planner::solve(latency_bound_tape(), bsp_g);
  ASSERT_TRUE(lat.dcost_dg.defined);
  EXPECT_EQ(lat.dcost_dg.value, 0.0);
  EXPECT_EQ(lat.dominant_term, "L");
  EXPECT_EQ(lat.verdict, "latency-bound");
}

TEST(PlannerSolve, EmptyTapeYieldsEmptyVerdict) {
  const replay::StatsTape tape;  // zero supersteps
  planner::Envelope envelope;
  const planner::PlanResult result = planner::solve(tape, envelope);
  EXPECT_EQ(result.best.cost, 0.0);
  EXPECT_EQ(result.verdict, "empty-tape");
  EXPECT_EQ(result.supersteps, 0u);
}

TEST(PlannerEnvelope, CheckRejectsMalformedAxes) {
  planner::Envelope envelope;
  envelope.g = {};
  EXPECT_THROW(envelope.check(), std::invalid_argument);
  envelope = {};
  envelope.g = {4.0, 2.0};  // not increasing
  EXPECT_THROW(envelope.check(), std::invalid_argument);
  envelope = {};
  envelope.g = {0.5};  // below the g >= 1 floor
  EXPECT_THROW(envelope.check(), std::invalid_argument);
  envelope = {};
  envelope.families = {replay::ModelFamily::kBspG,
                       replay::ModelFamily::kBspG};  // duplicate
  EXPECT_THROW(envelope.check(), std::invalid_argument);
  envelope = {};
  envelope.frontier_percent = -1.0;
  EXPECT_THROW(envelope.check(), std::invalid_argument);
  envelope = {};
  EXPECT_NO_THROW(envelope.check());
}

TEST(PlannerEnvelope, GridSizeCrossesOnlyReadAxes) {
  const planner::Envelope envelope = wide_envelope();
  // BSP(g): 4g x 3L; BSP(m): 3L x 4m x 2pen; QSM(g): 4g;
  // QSM(m): 4m x 2pen; SS-BSP(m): 3L x 4m.
  EXPECT_EQ(envelope.grid_size(), 4u * 3 + 3u * 4 * 2 + 4u + 4u * 2 + 3u * 4);
  EXPECT_EQ(envelope.enumerate().size(), envelope.grid_size());
}

// ---- wire codecs -----------------------------------------------------------

TEST(PlannerWire, TapeJsonRoundTripPreservesFingerprint) {
  const replay::StatsTape tape = random_tape(42, 12);
  const util::Json encoded = planner::tape_to_json(tape);
  const replay::StatsTape decoded =
      planner::tape_from_json(util::Json::parse(encoded.dump()));
  EXPECT_EQ(decoded.p, tape.p);
  EXPECT_EQ(decoded.size(), tape.size());
  EXPECT_EQ(decoded.captured_model, tape.captured_model);
  EXPECT_EQ(decoded.total_flits, tape.total_flits);
  EXPECT_EQ(decoded.fingerprint(), tape.fingerprint());
}

TEST(PlannerWire, FingerprintSeparatesDifferentTapes) {
  const replay::StatsTape a = random_tape(1, 8);
  const replay::StatsTape b = random_tape(2, 8);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  replay::StatsTape c = random_tape(1, 8);
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  c.max_work[3] += 1.0;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(PlannerWire, EnvelopeFromJsonParsesRangesAndNames) {
  const util::Json doc = util::Json::parse(R"({
    "families": ["bsp-g", "qsm-m"],
    "g": {"min": 1, "max": 16, "steps": 5, "scale": "log"},
    "L": [1, 8],
    "m": {"min": 1, "max": 4, "steps": 4},
    "penalty": ["linear"],
    "frontier_percent": 25,
    "max_frontier": 4
  })");
  const planner::Envelope envelope = planner::envelope_from_json(doc);
  ASSERT_EQ(envelope.g.size(), 5u);
  EXPECT_DOUBLE_EQ(envelope.g.front(), 1.0);
  EXPECT_DOUBLE_EQ(envelope.g.back(), 16.0);
  EXPECT_DOUBLE_EQ(envelope.g[2], 4.0);  // geometric midpoint
  EXPECT_EQ(envelope.m, (std::vector<std::uint32_t>{1, 2, 3, 4}));
  EXPECT_EQ(envelope.families.size(), 2u);
  EXPECT_EQ(envelope.penalties,
            (std::vector<core::Penalty>{core::Penalty::kLinear}));
  EXPECT_DOUBLE_EQ(envelope.frontier_percent, 25.0);
  EXPECT_EQ(envelope.max_frontier, 4u);

  EXPECT_THROW(planner::envelope_from_json(
                   util::Json::parse(R"({"families": ["bsp-x"]})")),
               std::invalid_argument);
  EXPECT_THROW(planner::envelope_from_json(
                   util::Json::parse(R"({"gee": [1]})")),
               std::invalid_argument);
  EXPECT_THROW(planner::envelope_from_json(
                   util::Json::parse(R"({"g": {"min": 0, "max": 4,
                                               "steps": 3, "scale": "log"}})")),
               std::invalid_argument);
}

// ---- service ---------------------------------------------------------------

/// A complete inline-tape request document.
util::Json inline_request(const replay::StatsTape& tape) {
  util::Json request;
  request["tape"] = planner::tape_to_json(tape);
  util::Json envelope;
  envelope["families"] = util::Json::parse(R"(["bsp-g", "bsp-m"])");
  envelope["g"] = util::Json::parse("[1, 2, 4]");
  envelope["L"] = util::Json::parse("[1, 16]");
  envelope["m"] = util::Json::parse("[1, 16]");
  request["envelope"] = envelope;
  return request;
}

TEST(PlanService, PlanCacheHitAccounting) {
  planner::PlanService service;
  const util::Json request = inline_request(random_tape(3, 10));

  const util::Json first = service.plan(request);
  ASSERT_NE(first.get("cache"), nullptr);
  EXPECT_FALSE(first.get("cache")->get("plan_hit")->as_bool());
  EXPECT_EQ(first.get("cache")->get("plan_misses")->as_int(), 1);

  const util::Json second = service.plan(request);
  EXPECT_TRUE(second.get("cache")->get("plan_hit")->as_bool());
  EXPECT_EQ(second.get("cache")->get("plan_hits")->as_int(), 1);
  // The cached plan is the same plan.
  EXPECT_EQ(first.get("plan")->get("best")->dump(),
            second.get("plan")->get("best")->dump());

  const util::Json stats = service.stats();
  EXPECT_EQ(stats.get("plan_cache")->get("entries")->as_int(), 1);
  EXPECT_EQ(stats.get("plan_cache")->get("hits")->as_int(), 1);
}

TEST(PlanService, ScenarioTapesComeFromTheTapeCacheOnRepeat) {
  planner::PlanService service;
  util::Json request = util::Json::parse(R"({
    "scenario": "table1.broadcast",
    "params": {"p": 32},
    "seed": 5,
    "envelope": {"families": ["bsp-g"], "g": [1, 4], "L": [1, 16]}
  })");
  const util::Json first = service.plan(request);
  EXPECT_FALSE(first.get("tape")->get("cache_hit")->as_bool());

  // Different envelope, same scenario job: plan cache misses, tape cache
  // hits — no second recording.
  request["envelope"] = util::Json::parse(
      R"({"families": ["bsp-g"], "g": [1, 2, 4], "L": [1]})");
  const util::Json second = service.plan(request);
  EXPECT_TRUE(second.get("tape")->get("cache_hit")->as_bool());
  EXPECT_FALSE(second.get("cache")->get("plan_hit")->as_bool());
  EXPECT_EQ(first.get("tape")->get("fingerprint")->as_string(),
            second.get("tape")->get("fingerprint")->as_string());
}

TEST(PlanService, TwentyThousandPointEnvelopeIsOneTapePass) {
  planner::PlanService service;
  util::Json request;
  request["tape"] = planner::tape_to_json(random_tape(9, 32));
  // BSP(m): 10 L x 1000 m x 2 penalties = 20,000 grid points.
  util::Json envelope;
  envelope["families"] = util::Json::parse(R"(["bsp-m"])");
  envelope["L"] = util::Json::parse(
      R"({"min": 1, "max": 512, "steps": 10, "scale": "log"})");
  envelope["m"] = util::Json::parse(
      R"({"min": 1, "max": 1000, "steps": 1000})");
  envelope["penalty"] = util::Json::parse(R"(["linear", "exp"])");
  request["envelope"] = envelope;

  obs::Counter& passes =
      obs::MetricsRegistry::global().counter("planner.tape_passes");
  const std::uint64_t before = passes.value();
  const util::Json response = service.plan(request);
  EXPECT_EQ(response.get("plan")->get("grid_points")->as_int(), 20000);
  EXPECT_EQ(passes.value() - before, 1u);
}

// ---- HTTP surface ----------------------------------------------------------

class PlanHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<planner::PlanService>();
    service_->mount(server_);
    server_.start(0);
    ASSERT_NE(server_.port(), 0);
  }

  fleet::HttpResult post_plan(const std::string& body) {
    return fleet::http_post("127.0.0.1", server_.port(), "/plan", body);
  }

  obs::HttpServer server_;
  std::unique_ptr<planner::PlanService> service_;
};

TEST_F(PlanHttpTest, RoundTripServesAPlan) {
  const replay::StatsTape tape = random_tape(21, 12);
  const fleet::HttpResult result = post_plan(inline_request(tape).dump());
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.status, 200) << result.body;

  const util::Json response = util::Json::parse(result.body);
  const util::Json* plan = response.get("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(plan->get("best"), nullptr);
  EXPECT_NE(plan->get("best")->get("family"), nullptr);
  EXPECT_NE(plan->get("dominant"), nullptr);
  EXPECT_NE(plan->get("marginal"), nullptr);

  // The served optimum equals the library optimum on the same inputs.
  util::Json envelope_doc;
  const util::Json request = inline_request(tape);
  const planner::PlanResult local = planner::solve(
      tape, planner::envelope_from_json(*request.get("envelope")));
  EXPECT_EQ(plan->get("best")->get("cost")->as_double(), local.best.cost);
  EXPECT_EQ(static_cast<std::size_t>(plan->get("best")->get("index")->as_int()),
            local.best.index);

  // The response is correlated back to the HTTP request: its server-assigned
  // id plus a per-phase wall-clock breakdown of the solve.
  const util::Json* req = response.get("request");
  ASSERT_NE(req, nullptr);
  ASSERT_NE(req->get("id"), nullptr);
  EXPECT_EQ(req->get("id")->as_string().substr(0, 2), "r-");
  const util::Json* phases = req->get("phase_ns");
  ASSERT_NE(phases, nullptr);
  EXPECT_TRUE(phases->is_object());
}

TEST_F(PlanHttpTest, MalformedRequestsMapToClientErrors) {
  // Invalid JSON body.
  EXPECT_EQ(post_plan("{not json").status, 400);
  // Valid JSON, no envelope.
  EXPECT_EQ(post_plan(R"({"scenario": "table1.broadcast"})").status, 400);
  // Unknown model family.
  EXPECT_EQ(post_plan(
                R"({"scenario": "table1.broadcast",
                    "envelope": {"families": ["bsp-x"]}})")
                .status,
            400);
  // Non-increasing axis.
  EXPECT_EQ(post_plan(
                R"({"scenario": "table1.broadcast",
                    "envelope": {"g": [4, 2]}})")
                .status,
            400);
  // Unknown envelope key.
  EXPECT_EQ(post_plan(
                R"({"scenario": "table1.broadcast",
                    "envelope": {"gee": [1]}})")
                .status,
            400);
  // Both tape and scenario.
  const util::Json tape = planner::tape_to_json(random_tape(1, 2));
  EXPECT_EQ(post_plan(std::string(R"({"scenario": "table1.broadcast",
                                      "tape": )") +
                      tape.dump() + R"(, "envelope": {}})")
                .status,
            400);
  // Unknown scenario is a 404, not a 400.
  EXPECT_EQ(post_plan(R"({"scenario": "no.such", "envelope": {}})").status,
            404);
  // Wrong method on a known path.
  EXPECT_EQ(fleet::http_get("127.0.0.1", server_.port(), "/plan").status, 405);

  // Every error body is a JSON document with an "error" member.
  const fleet::HttpResult err = post_plan(R"({"envelope": {}})");
  EXPECT_EQ(err.status, 400);
  EXPECT_NE(util::Json::parse(err.body).get("error"), nullptr);
}

}  // namespace
