// Campaign subsystem tests: sweep spec parsing and cartesian expansion,
// parallel execution determinism, JSON Lines round-trip, and the resume
// manifest's skip logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/cli_docs.hpp"
#include "campaign/status.hpp"
#include "obs/export.hpp"

namespace {

using namespace pbw;
using campaign::Job;
using campaign::ParamSet;
using campaign::Registry;
using campaign::Scenario;

/// A registry with one cheap deterministic scenario.
Registry test_registry() {
  Registry registry;
  Scenario s;
  s.name = "toy.sum";
  s.description = "a + b plus a stream draw";
  s.params = {{"a", "1", ""}, {"b", "2", ""}, {"tag", "x", ""}};
  s.run = [](const ParamSet& params, util::Xoshiro256& rng) {
    return campaign::MetricRow{
        {"sum", params.get_double("a") + params.get_double("b")},
        {"draw", static_cast<double>(rng() >> 48)},
    };
  };
  registry.add(std::move(s));
  return registry;
}

/// Unique temp path per test; removes leftovers from a previous run.
std::string temp_out(const std::string& stem) {
  const auto path =
      (std::filesystem::temp_directory_path() / (stem + ".jsonl")).string();
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  return path;
}

std::vector<util::Json> read_records(const std::string& path) {
  std::vector<util::Json> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(util::Json::parse(line));
  }
  return records;
}

// ---- ParamSet -------------------------------------------------------------

TEST(ParamSet, TypedGettersAndCanonical) {
  ParamSet p;
  p.set("p", "64");
  p.set("g", "2.5");
  p.set("name", "zipf");
  EXPECT_EQ(p.get_int("p"), 64);
  EXPECT_DOUBLE_EQ(p.get_double("g"), 2.5);
  EXPECT_EQ(p.get("name"), "zipf");
  EXPECT_THROW(p.get("missing"), std::out_of_range);
  EXPECT_THROW(p.get_int("name"), std::invalid_argument);
  // Sorted by key, independent of insertion order.
  EXPECT_EQ(p.canonical(), "g=2.5,name=zipf,p=64");
}

TEST(ParamSet, JsonNumbersVsStrings) {
  ParamSet p;
  p.set("p", "64");
  p.set("kind", "bsp");
  const util::Json j = p.to_json();
  EXPECT_DOUBLE_EQ(j.get("p")->as_double(), 64.0);
  EXPECT_EQ(j.get("kind")->as_string(), "bsp");
}

// ---- spec parsing ---------------------------------------------------------

TEST(Sweep, ParsesBlocksCommentsAndLists) {
  const auto specs = campaign::parse_spec(
      "# a comment\n"
      "scenario = toy.sum\n"
      "trials = 3\n"
      "seeds = 1, 2\n"
      "a = 1, 10  # inline comment\n"
      "\n"
      "[sweep]\n"
      "scenario = toy.sum\n"
      "b = 5\n");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].scenario, "toy.sum");
  EXPECT_EQ(specs[0].trials, 3);
  EXPECT_EQ(specs[0].seeds, (std::vector<std::uint64_t>{1, 2}));
  ASSERT_EQ(specs[0].axes.size(), 1u);
  EXPECT_EQ(specs[0].axes[0].first, "a");
  EXPECT_EQ(specs[0].axes[0].second, (std::vector<std::string>{"1", "10"}));
  EXPECT_EQ(specs[1].trials, 1);  // defaults reset per block
}

TEST(Sweep, ParseErrors) {
  EXPECT_THROW(campaign::parse_spec(""), std::invalid_argument);
  EXPECT_THROW(campaign::parse_spec("a = 1\n"), std::invalid_argument);  // no scenario
  EXPECT_THROW(campaign::parse_spec("scenario = s\nnot a kv line\n"),
               std::invalid_argument);
  EXPECT_THROW(campaign::parse_spec("scenario = s\ntrials = 0\n"),
               std::invalid_argument);
  EXPECT_THROW(campaign::parse_spec("scenario = s\nseeds = frog\n"),
               std::invalid_argument);
  EXPECT_THROW(campaign::parse_spec("scenario = s\na = 1\na = 2\n"),
               std::invalid_argument);
}

// ---- expansion ------------------------------------------------------------

TEST(Sweep, ExpandsCartesianGridTimesSeeds) {
  const auto registry = test_registry();
  const auto specs = campaign::parse_spec(
      "scenario = toy.sum\n"
      "seeds = 7, 8\n"
      "a = 1, 2, 3\n"
      "b = 10, 20\n");
  const auto jobs = campaign::expand_all(specs, registry);
  ASSERT_EQ(jobs.size(), 3u * 2u * 2u);
  // Last axis fastest, then seeds; defaults filled for unswept params.
  EXPECT_EQ(jobs[0].params.get("a"), "1");
  EXPECT_EQ(jobs[0].params.get("b"), "10");
  EXPECT_EQ(jobs[0].params.get("tag"), "x");
  EXPECT_EQ(jobs[0].seed, 7u);
  EXPECT_EQ(jobs[1].seed, 8u);
  EXPECT_EQ(jobs[2].params.get("b"), "20");
  EXPECT_EQ(jobs.back().params.get("a"), "3");
  EXPECT_EQ(jobs.back().params.get("b"), "20");
  // Keys are unique across the grid.
  std::set<std::string> keys;
  for (const auto& job : jobs) keys.insert(job.base_key());
  EXPECT_EQ(keys.size(), jobs.size());
}

TEST(Sweep, RejectsUnknownScenarioAndParam) {
  const auto registry = test_registry();
  campaign::SweepSpec spec;
  spec.scenario = "no.such";
  EXPECT_THROW(campaign::expand(spec, registry), std::invalid_argument);
  spec.scenario = "toy.sum";
  spec.axes = {{"bogus", {"1"}}};
  EXPECT_THROW(campaign::expand(spec, registry), std::invalid_argument);
}

// ---- recorder + JSONL round-trip ------------------------------------------

TEST(Recorder, RoundTripsRecordThroughJson) {
  const auto registry = test_registry();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = toy.sum\ntrials = 2\na = 4\n"),
      registry);
  ASSERT_EQ(jobs.size(), 1u);

  const auto out = temp_out("pbw_roundtrip");
  campaign::Recorder recorder(out, "vtest");
  campaign::run_campaign(jobs, recorder, {.threads = 1});

  const auto records = read_records(out);
  ASSERT_EQ(records.size(), 1u);
  const auto& rec = records[0];
  EXPECT_EQ(rec.get("scenario")->as_string(), "toy.sum");
  EXPECT_EQ(rec.get("git")->as_string(), "vtest");
  EXPECT_EQ(rec.get("seed")->as_int(), 1);
  EXPECT_EQ(rec.get("trials")->as_int(), 2);
  EXPECT_DOUBLE_EQ(rec.get("params")->get("a")->as_double(), 4.0);
  const util::Json* sum = rec.get("metrics")->get("sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_EQ(sum->get("n")->as_int(), 2);
  EXPECT_DOUBLE_EQ(sum->get("mean")->as_double(), 6.0);  // 4 + default b=2
  EXPECT_DOUBLE_EQ(sum->get("stddev")->as_double(), 0.0);
  EXPECT_EQ(rec.get("key")->as_string(), recorder.key_for(jobs[0]));
}

TEST(Recorder, AggregateComputesQuantiles) {
  std::vector<campaign::MetricRow> trials;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) trials.push_back({{"t", v}});
  const util::Json m = campaign::Recorder::aggregate(trials);
  EXPECT_DOUBLE_EQ(m.get("t")->get("mean")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(m.get("t")->get("p50")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(m.get("t")->get("min")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(m.get("t")->get("max")->as_double(), 4.0);
}

// ---- resume ---------------------------------------------------------------

TEST(Resume, SecondRunSkipsEveryJobAndForceReruns) {
  const auto registry = test_registry();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = toy.sum\na = 1, 2\nseeds = 1, 2\n"),
      registry);
  ASSERT_EQ(jobs.size(), 4u);
  const auto out = temp_out("pbw_resume");

  {
    campaign::Recorder recorder(out, "vtest");
    const auto stats = campaign::run_campaign(jobs, recorder, {.threads = 2});
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.skipped, 0u);
  }
  {
    // A fresh Recorder re-reads the manifest from disk.
    campaign::Recorder recorder(out, "vtest");
    const auto stats = campaign::run_campaign(jobs, recorder, {.threads = 2});
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.skipped, 4u);
    EXPECT_EQ(read_records(out).size(), 4u);  // no duplicate records
  }
  {
    // A different code version must NOT hit the cache.
    campaign::Recorder recorder(out, "vother");
    const auto stats = campaign::run_campaign(jobs, recorder, {.threads = 2});
    EXPECT_EQ(stats.executed, 4u);
  }
  {
    // --force re-runs and re-records.
    campaign::Recorder recorder(out, "vtest");
    const auto stats =
        campaign::run_campaign(jobs, recorder, {.threads = 2, .force = true});
    EXPECT_EQ(stats.executed, 4u);
    EXPECT_EQ(stats.skipped, 0u);
  }
}

// ---- executor determinism -------------------------------------------------

TEST(Executor, ResultsIndependentOfThreadCount) {
  const auto registry = test_registry();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec(
          "scenario = toy.sum\ntrials = 3\na = 1, 2, 3\nb = 4, 5\n"),
      registry);

  const auto out1 = temp_out("pbw_threads1");
  const auto out4 = temp_out("pbw_threads4");
  {
    campaign::Recorder r1(out1, "vtest");
    campaign::run_campaign(jobs, r1, {.threads = 1});
    campaign::Recorder r4(out4, "vtest");
    campaign::run_campaign(jobs, r4, {.threads = 4});
  }
  auto lines = [](const std::string& path) {
    std::vector<std::string> out;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(lines(out1), lines(out4));
}

TEST(Executor, ScenarioErrorsPropagate) {
  Registry registry;
  Scenario s;
  s.name = "toy.throws";
  s.run = [](const ParamSet&, util::Xoshiro256&) -> campaign::MetricRow {
    throw std::runtime_error("boom");
  };
  registry.add(std::move(s));
  campaign::SweepSpec spec;
  spec.scenario = "toy.throws";
  const auto jobs = campaign::expand(spec, registry);
  const auto out = temp_out("pbw_throws");
  campaign::Recorder recorder(out, "vtest");
  EXPECT_THROW(campaign::run_campaign(jobs, recorder, {.threads = 2}),
               std::runtime_error);
}

// ---- registry -------------------------------------------------------------

TEST(Registry, RejectsDuplicatesAndAnonymous) {
  Registry registry = test_registry();
  Scenario dup;
  dup.name = "toy.sum";
  dup.run = [](const ParamSet&, util::Xoshiro256&) {
    return campaign::MetricRow{};
  };
  EXPECT_THROW(registry.add(dup), std::invalid_argument);
  Scenario anon;
  EXPECT_THROW(registry.add(anon), std::invalid_argument);
}

TEST(Registry, BuiltinsCoverTable1AndPortedBenches) {
  const auto& registry = Registry::instance();
  for (const char* name :
       {"table1.one_to_all", "table1.broadcast", "table1.summation",
        "table1.list_ranking", "table1.sorting", "sched.penalty",
        "broadcast.bounds", "sorting.engines"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(Executor, TraceDirWritesOneValidStreamPerJob) {
  const auto& registry = Registry::instance();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = table1.one_to_all\np = 64\ng = 4\n"
                           "L = 4\nfamily = bsp, qsm\n"),
      registry);
  ASSERT_EQ(jobs.size(), 2u);
  const auto out = temp_out("pbw_tracedir");
  const auto trace_dir =
      (std::filesystem::temp_directory_path() / "pbw_tracedir_traces").string();
  std::filesystem::remove_all(trace_dir);

  campaign::Recorder recorder(out, "vtest");
  campaign::ExecutorOptions options;
  options.threads = 2;
  options.trace_dir = trace_dir;
  const auto stats = campaign::run_campaign(jobs, recorder, options);
  EXPECT_EQ(stats.executed, 2u);

  // One JSONL stream per job, each passing the schema validator with at
  // least one traced run (the scenarios run several Machines per job).
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(trace_dir)) {
    ++files;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in) << entry.path();
    const auto v = obs::validate_trace_jsonl(in);
    EXPECT_TRUE(v.ok) << entry.path() << ": " << v.error;
    EXPECT_GT(v.runs, 0u) << entry.path();
    EXPECT_GT(v.supersteps, 0u) << entry.path();
  }
  EXPECT_EQ(files, 2u);
  std::filesystem::remove_all(trace_dir);
}

// ---- cooperative interrupt + resume ---------------------------------------

TEST(Executor, StopFlagInterruptsCleanlyAndResumes) {
  // A scenario that flips the stop flag during its third job: the worker
  // drains no further groups, stats report the interrupt, and every
  // recorded row/manifest line is whole — so a second run resumes.
  std::atomic<bool> stop{false};
  std::atomic<int> runs{0};
  Registry registry;
  Scenario s;
  s.name = "toy.stoppable";
  s.description = "sets the stop flag on its third run";
  s.params = {{"a", "1", ""}};
  s.run = [&stop, &runs](const ParamSet& params, util::Xoshiro256&) {
    if (runs.fetch_add(1) + 1 == 3) stop.store(true);
    return campaign::MetricRow{{"a", params.get_double("a")}};
  };
  registry.add(std::move(s));

  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = toy.stoppable\na = 1, 2, 3, 4, 5, 6\n"),
      registry);
  ASSERT_EQ(jobs.size(), 6u);
  const auto out = temp_out("pbw_interrupt");

  campaign::CampaignStatus status;
  {
    campaign::Recorder recorder(out, "vtest");
    campaign::ExecutorOptions options;
    options.threads = 1;  // deterministic: jobs run in order
    options.status = &status;
    options.stop = &stop;
    const auto stats = campaign::run_campaign(jobs, recorder, options);
    EXPECT_TRUE(stats.interrupted);
    EXPECT_EQ(stats.executed, 3u);
    EXPECT_EQ(stats.total, 6u);
  }
  EXPECT_EQ(status.to_json().get("state")->as_string(), "interrupted");

  // Every recorded line is whole and parseable (read_records throws on a
  // torn row), and the manifest matches the results file line for line.
  EXPECT_EQ(read_records(out).size(), 3u);
  std::size_t manifest_lines = 0;
  {
    std::ifstream manifest(out + ".manifest");
    std::string line;
    while (std::getline(manifest, line)) {
      if (!line.empty()) ++manifest_lines;
    }
  }
  EXPECT_EQ(manifest_lines, 3u);

  stop.store(false);
  {
    campaign::Recorder recorder(out, "vtest");
    campaign::ExecutorOptions options;
    options.threads = 1;
    options.stop = &stop;
    const auto stats = campaign::run_campaign(jobs, recorder, options);
    EXPECT_FALSE(stats.interrupted);
    EXPECT_EQ(stats.skipped, 3u);
    EXPECT_EQ(stats.executed, 3u);
  }
  EXPECT_EQ(read_records(out).size(), 6u);  // no duplicates, no gaps
}

TEST(Executor, StatusBoardTracksProgressAndCache) {
  const auto registry = test_registry();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = toy.sum\na = 1, 2\nseeds = 1, 2\n"),
      registry);
  const auto out = temp_out("pbw_statusboard");
  campaign::Recorder recorder(out, "vtest");
  campaign::CampaignStatus status;
  campaign::ExecutorOptions options;
  options.threads = 2;
  options.status = &status;
  const auto stats = campaign::run_campaign(jobs, recorder, options);
  EXPECT_EQ(stats.executed, 4u);

  const util::Json j = status.to_json();
  EXPECT_EQ(j.get("state")->as_string(), "done");
  EXPECT_EQ(j.get("jobs")->get("done")->as_int(), 4);
  EXPECT_EQ(j.get("jobs")->get("remaining")->as_int(), 0);
  EXPECT_EQ(j.get("jobs")->get("failed")->as_int(), 0);
  // toy.sum is not replayable: every job simulated, none recosted.
  EXPECT_EQ(j.get("jobs")->get("simulated")->as_int(), 4);
  EXPECT_EQ(j.get("jobs")->get("recosted")->as_int(), 0);
  ASSERT_NE(j.get("scenarios")->get("toy.sum"), nullptr);
  EXPECT_EQ(j.get("scenarios")->get("toy.sum")->get("done")->as_int(), 4);
  // The board is quiescent after the run.
  EXPECT_TRUE(status.in_flight().empty());
}

TEST(Registry, BuiltinTable1ScenarioRunsAtSmallScale) {
  const auto& registry = Registry::instance();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = table1.one_to_all\np = 64\ng = 4\n"
                           "L = 4\nfamily = bsp, qsm\n"),
      registry);
  ASSERT_EQ(jobs.size(), 2u);
  const auto out = temp_out("pbw_builtin");
  campaign::Recorder recorder(out, "vtest");
  const auto stats = campaign::run_campaign(jobs, recorder, {.threads = 2});
  EXPECT_EQ(stats.executed, 2u);
  for (const auto& rec : read_records(out)) {
    EXPECT_DOUBLE_EQ(rec.get("metrics")->get("correct")->get("mean")->as_double(),
                     1.0);
    EXPECT_GT(rec.get("metrics")->get("sep_meas")->get("mean")->as_double(), 1.0);
  }
}

TEST(Registry, BuiltinContourMapChargesTheFullGrid) {
  const auto& registry = Registry::instance();
  const auto jobs = campaign::expand_all(
      campaign::parse_spec("scenario = contour.map\npattern = random\n"
                           "p = 64\nh = 4\nrounds = 4\n"
                           "g_cells = 16\nm_cells = 8\n"),
      registry);
  ASSERT_EQ(jobs.size(), 1u);
  const auto out = temp_out("pbw_contour");
  campaign::Recorder recorder(out, "vtest");
  const auto stats = campaign::run_campaign(jobs, recorder, {.threads = 2});
  EXPECT_EQ(stats.executed, 1u);
  const auto records = read_records(out);
  ASSERT_EQ(records.size(), 1u);
  const util::Json* metrics = records.front().get("metrics");
  const auto mean = [&](const char* key) {
    return metrics->get(key)->get("mean")->as_double();
  };
  // Every cell is charged and classified: wins partition the grid, the
  // extrema bracket, and the map saw the whole 16 x 8 cross product.
  EXPECT_DOUBLE_EQ(mean("cells"), 128.0);
  EXPECT_DOUBLE_EQ(mean("local_wins") + mean("global_wins"), 128.0);
  EXPECT_GT(mean("time_min"), 0.0);
  EXPECT_GE(mean("time_max"), mean("time_min"));
  EXPECT_GE(mean("time_sum"), mean("time_max"));
  // rounds communication supersteps plus the terminating (empty) one.
  EXPECT_DOUBLE_EQ(mean("supersteps"), 5.0);
}

// ---- CLI self-description --------------------------------------------------

/// Builds a Cli from a literal argv.
util::Cli make_cli(std::vector<std::string> args) {
  std::vector<char*> argv = {const_cast<char*>("pbw-campaign")};
  for (std::string& arg : args) argv.push_back(arg.data());
  return util::Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CliDocs, EveryDocumentedFlagParsesAsKnown) {
  // Feed each command its own documented flags (with a dummy value) and
  // assert none come back unknown — this is what keeps --help, the docs
  // tables and the unknown-flag gate from drifting apart.
  for (const campaign::CommandDoc& doc : campaign::command_docs()) {
    std::vector<std::string> args = {doc.name};
    for (const util::FlagDoc& flag : doc.flags) {
      args.push_back("--" + campaign::flag_doc_name(flag) + "=1");
    }
    args.push_back("--help");  // always allowed
    const util::Cli cli = make_cli(args);
    EXPECT_TRUE(campaign::unknown_flags(cli, doc).empty())
        << "command " << doc.name;
  }
}

TEST(CliDocs, UnknownFlagIsReported) {
  const campaign::CommandDoc* doc = campaign::find_command_doc("table1");
  ASSERT_NE(doc, nullptr);
  const util::Cli cli = make_cli({"table1", "--trails=5", "--seed=1"});
  const auto unknown = campaign::unknown_flags(cli, *doc);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "trails");
}

TEST(CliDocs, CoversEveryDispatchedCommand) {
  for (const char* name :
       {"list", "run", "table1", "serve", "worker", "submit", "plan"}) {
    EXPECT_NE(campaign::find_command_doc(name), nullptr) << name;
  }
  EXPECT_EQ(campaign::find_command_doc("no-such"), nullptr);
}

TEST(CliDocs, FlagDocNameStripsValueSpellings) {
  EXPECT_EQ(campaign::flag_doc_name({"tape-cache-mb=<n>", ""}),
            "tape-cache-mb");
  EXPECT_EQ(campaign::flag_doc_name({"trace[=<file>]", ""}), "trace");
  EXPECT_EQ(campaign::flag_doc_name({"force", ""}), "force");
}

}  // namespace
