// Tests for the Adversarial Queuing Theory substrate and the dynamic
// routing theorems: restriction compliance of every adversary, BSP(g)
// stability exactly at beta <= 1/g (Theorem 6.5), Algorithm B stability
// near the admissible rates (Theorem 6.7), and the M/G/1 reference.
#include <gtest/gtest.h>

#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "core/bounds.hpp"

namespace {

using namespace pbw;
using aqt::AqtParams;

AqtParams params(std::uint32_t p, double alpha, double beta, std::uint32_t w) {
  AqtParams prm;
  prm.p = p;
  prm.alpha = alpha;
  prm.beta = beta;
  prm.w = w;
  return prm;
}

TEST(Adversary, ZooRespectsRestrictions) {
  const auto prm = params(32, 4.0, 0.5, 64);
  util::Xoshiro256 rng(1);
  for (auto& adv : aqt::adversary_zoo(prm)) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      const auto batch = adv->interval(i, rng);
      EXPECT_TRUE(aqt::respects_restrictions(batch, prm))
          << adv->name() << " interval " << i;
    }
  }
}

TEST(Adversary, SingleSourceSaturatesLocalCap) {
  const auto prm = params(16, 1.0, 0.5, 64);
  util::Xoshiro256 rng(2);
  auto adv = aqt::make_single_source(prm);
  const auto batch = adv->interval(0, rng);
  std::uint64_t from_hot = 0;
  for (const auto& a : batch) from_hot += (a.src == 0);
  EXPECT_EQ(from_hot, prm.local_cap());
}

TEST(Adversary, SteadyIsBalanced) {
  const auto prm = params(16, 2.0, 0.5, 64);
  util::Xoshiro256 rng(3);
  auto adv = aqt::make_steady(prm);
  const auto batch = adv->interval(0, rng);
  EXPECT_EQ(batch.size(), prm.global_cap());
  std::vector<int> out(16, 0);
  for (const auto& a : batch) ++out[a.src];
  const auto [mn, mx] = std::minmax_element(out.begin(), out.end());
  EXPECT_LE(*mx - *mn, 1);
}

TEST(Adversary, RestrictionCheckerCatchesViolations) {
  const auto prm = params(4, 1.0, 0.25, 8);  // local cap = 2
  std::vector<aqt::Arrival> batch{{0, 1}, {0, 2}, {0, 3}};  // src 0 sends 3
  EXPECT_FALSE(aqt::respects_restrictions(batch, prm));
  std::vector<aqt::Arrival> ok{{0, 1}, {1, 2}};
  EXPECT_TRUE(aqt::respects_restrictions(ok, prm));
}

// ---- Theorem 6.5: BSP(g) stability threshold ---------------------------------

TEST(BspGDynamic, StableBelowOneOverG) {
  const double g = 4;
  const auto prm = params(32, 2.0, 0.20, 128);  // beta < 1/g = 0.25
  auto adv = aqt::make_single_source(prm);
  const auto r = aqt::run_bsp_g_dynamic(*adv, g, 400, 4);
  EXPECT_TRUE(r.restrictions_ok);
  EXPECT_TRUE(r.stable) << "slope=" << r.tail_slope << " final=" << r.final_queue;
}

TEST(BspGDynamic, UnstableAboveOneOverG) {
  const double g = 4;
  const auto prm = params(32, 2.0, 0.40, 128);  // beta > 1/g
  auto adv = aqt::make_single_source(prm);
  const auto r = aqt::run_bsp_g_dynamic(*adv, g, 400, 4);
  EXPECT_TRUE(r.restrictions_ok);
  EXPECT_FALSE(r.stable);
  EXPECT_GT(r.tail_slope, 0.0);
  // The backlog grows linearly: final queue ~ windows * w * (g*beta - 1).
  EXPECT_GT(r.final_queue, 100.0);
}

TEST(BspGDynamic, BoundFormulaAgrees) {
  EXPECT_TRUE(core::bounds::bsp_g_stable(0.20, 4));
  EXPECT_FALSE(core::bounds::bsp_g_stable(0.40, 4));
}

// ---- Theorem 6.7: Algorithm B on the BSP(m) ----------------------------------

TEST(AlgorithmB, StableAtHighLocalRate) {
  // beta = 0.5 >> 1/g = m/p = 1/4: BSP(g) would diverge; BSP(m) absorbs it.
  const std::uint32_t p = 32, m = 8;
  const auto prm = params(p, 4.0, 0.5, 128);  // alpha w = 512 <= w*m/(1+eps)
  auto adv = aqt::make_single_source(prm);
  const auto r = aqt::run_algorithm_b(*adv, m, 0.25, 400, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  EXPECT_TRUE(r.restrictions_ok);
  EXPECT_TRUE(r.stable) << "slope=" << r.tail_slope << " final=" << r.final_queue;
  // Matched-bandwidth BSP(g) diverges on the same trace.
  auto adv2 = aqt::make_single_source(prm);
  const auto rg = aqt::run_bsp_g_dynamic(*adv2, double(p) / m, 400, 4);
  EXPECT_FALSE(rg.stable);
}

TEST(AlgorithmB, StableForWholeZoo) {
  const std::uint32_t p = 32, m = 8;
  const auto prm = params(p, 3.0, 0.4, 128);
  for (auto& adv : aqt::adversary_zoo(prm)) {
    const auto r = aqt::run_algorithm_b(*adv, m, 0.25, 200, 4,
                                        aqt::BatchPolicy::kUnbalancedSend);
    EXPECT_TRUE(r.restrictions_ok) << adv->name();
    EXPECT_TRUE(r.stable) << adv->name() << " slope=" << r.tail_slope;
  }
}

TEST(AlgorithmB, UnstableBeyondAggregateBandwidth) {
  // alpha > m: more arrivals per window than the network can ever carry.
  const std::uint32_t p = 32, m = 4;
  const auto prm = params(p, 6.0, 0.5, 128);
  auto adv = aqt::make_steady(prm);
  const auto r = aqt::run_algorithm_b(*adv, m, 0.25, 300, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  EXPECT_FALSE(r.stable);
}

TEST(AlgorithmB, NaivePolicyMeltsDown) {
  // Same workload: the scheduled policy is stable, the unscheduled one
  // suffers the exponential overload penalty and diverges.
  const std::uint32_t p = 64, m = 8;
  const auto prm = params(p, 4.0, 0.25, 128);
  auto adv1 = aqt::make_steady(prm);
  const auto good = aqt::run_algorithm_b(*adv1, m, 0.25, 200, 4,
                                         aqt::BatchPolicy::kUnbalancedSend);
  auto adv2 = aqt::make_steady(prm);
  const auto bad =
      aqt::run_algorithm_b(*adv2, m, 0.25, 200, 4, aqt::BatchPolicy::kNaive);
  EXPECT_TRUE(good.stable);
  EXPECT_FALSE(bad.stable);
  EXPECT_GT(bad.mean_service, 4 * good.mean_service);
}

TEST(AlgorithmB, OfflineReferenceAtLeastAsGood) {
  const std::uint32_t p = 32, m = 8;
  const auto prm = params(p, 4.0, 0.5, 128);
  auto adv1 = aqt::make_rotating_hotspot(prm);
  const auto online = aqt::run_algorithm_b(*adv1, m, 0.25, 200, 4,
                                           aqt::BatchPolicy::kUnbalancedSend);
  auto adv2 = aqt::make_rotating_hotspot(prm);
  const auto offline =
      aqt::run_algorithm_b(*adv2, m, 0.25, 200, 4, aqt::BatchPolicy::kOffline);
  EXPECT_LE(offline.mean_service, online.mean_service * 1.01);
  // And online is within (1+eps) plus slack of the clairvoyant offline.
  EXPECT_LE(online.mean_service, offline.mean_service * 1.5 + 2.0);
}

// ---- M/G/1 reference (Claim 6.8) ---------------------------------------------

TEST(Mg1, ServiceMomentsMatchClaim) {
  const auto m = aqt::algob_service_moments(100, 10);
  // mu1 = (w/u) * sum_k k (1/k^4 - 1/(k+1)^4) < 1.21 w/u.
  EXPECT_LT(m.mu1, 1.21 * 100 / 10);
  EXPECT_GT(m.mu1, 1.0 * 100 / 10);
  EXPECT_GT(m.mu2, m.mu1 * m.mu1);  // strictly positive variance
}

TEST(Mg1, QueueFiniteBelowSaturation) {
  const auto m = aqt::algob_service_moments(100, 10);
  const double r = 0.05;  // r * mu1 ~ 0.6 < 1
  EXPECT_LT(aqt::mg1_mean_queue(r, m.mu1, m.mu2), 100.0);
  EXPECT_TRUE(std::isinf(aqt::mg1_mean_queue(0.2, m.mu1, m.mu2)));
}

TEST(Mg1, MonotoneInArrivalRate) {
  const auto m = aqt::algob_service_moments(100, 10);
  EXPECT_LT(aqt::mg1_mean_queue(0.02, m.mu1, m.mu2),
            aqt::mg1_mean_queue(0.06, m.mu1, m.mu2));
}

}  // namespace
