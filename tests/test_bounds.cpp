// Unit tests for the closed-form bound library: hand-computed values and
// the qualitative relationships the paper states (Table 1 separations,
// Theorem 4.1, Theorem 6.2's failure probability, AQT rate limits).
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"

namespace {

namespace bounds = pbw::core::bounds;

TEST(Bounds, LgGuards) {
  EXPECT_DOUBLE_EQ(bounds::lg(8), 3.0);
  EXPECT_DOUBLE_EQ(bounds::lg(1), 1.0);   // guarded
  EXPECT_DOUBLE_EQ(bounds::lg(0.5), 1.0); // guarded
}

TEST(Bounds, OneToAllSeparationIsThetaG) {
  // Table 1 row 1: QSM(m) Theta(p) vs QSM(g) Theta(gp).
  const std::uint32_t p = 1024;
  const double g = 16;
  const double local = bounds::one_to_all_local(p, g, 1, false);
  const double global = bounds::one_to_all_global(p, 1, false);
  EXPECT_DOUBLE_EQ(local / global, g);
}

TEST(Bounds, BroadcastHandComputed) {
  // p = 1024, m = 64: lg m + p/m = 6 + 16 = 22.
  EXPECT_DOUBLE_EQ(bounds::broadcast_qsm_m(1024, 64), 22.0);
  // g = 16: g lg p / lg g = 16*10/4 = 40.
  EXPECT_DOUBLE_EQ(bounds::broadcast_qsm_g(1024, 16), 40.0);
}

TEST(Bounds, BroadcastSeparationShape) {
  // Table 1: the broadcasting separation is Theta(lg p / lg g) — it grows
  // with p at fixed g and shrinks as g grows at fixed p.
  const std::uint32_t p = 4096;
  const double sep8 = bounds::broadcast_qsm_g(p, 8) / bounds::broadcast_qsm_m(p, p / 8);
  const double sep64 =
      bounds::broadcast_qsm_g(p, 64) / bounds::broadcast_qsm_m(p, p / 64);
  EXPECT_LT(sep64, sep8);
  EXPECT_GT(sep8, 1.0);
  const std::uint32_t p2 = 1u << 20;
  const double sep8_large =
      bounds::broadcast_qsm_g(p2, 8) / bounds::broadcast_qsm_m(p2, p2 / 8);
  EXPECT_GT(sep8_large, sep8);
}

TEST(Bounds, Theorem41LowerBelowUpper) {
  // The Theorem 4.1 LB must not exceed the (L/g)-ary tree UB.
  for (std::uint32_t p : {64u, 1024u, 65536u}) {
    for (double g : {2.0, 8.0}) {
      for (double L : {16.0, 64.0}) {
        EXPECT_LE(bounds::broadcast_bsp_g_lower(p, g, L),
                  bounds::broadcast_bsp_g(p, g, L) + 1e-9)
            << "p=" << p << " g=" << g << " L=" << L;
      }
    }
  }
}

TEST(Bounds, TernaryBroadcastHandComputed) {
  // ceil(log_3 81) = 4.
  EXPECT_DOUBLE_EQ(bounds::broadcast_ternary(81, 2), 8.0);
}

TEST(Bounds, ReduceSeparation) {
  // Table 1 row 3 at n = p: separation Omega(lg n / lg lg n).
  const std::uint64_t n = 1u << 20;
  const double g = 32;
  const auto m = static_cast<std::uint32_t>(n / g);
  const double local = bounds::reduce_qsm_g_lower(n, g);
  const double global = bounds::reduce_qsm_m(n, m);
  // global = lg m + n/m ~ 15 + 32 = 47; local = 32*20/lg(20) ~ 148.
  EXPECT_GT(local / global, 2.0);
}

TEST(Bounds, SortBoundsHandComputed) {
  EXPECT_DOUBLE_EQ(bounds::sort_qsm_m(1 << 16, 64), 1024.0);
  EXPECT_DOUBLE_EQ(bounds::sort_bsp_m(1 << 16, 64, 8), 1032.0);
}

TEST(Bounds, RoutingOptimalIsMaxOfThree) {
  EXPECT_DOUBLE_EQ(bounds::routing_bsp_m_optimal(1000, 10, 20, 10, 5), 100.0);
  EXPECT_DOUBLE_EQ(bounds::routing_bsp_m_optimal(100, 50, 20, 10, 5), 50.0);
  EXPECT_DOUBLE_EQ(bounds::routing_bsp_m_optimal(100, 10, 60, 10, 5), 60.0);
  EXPECT_DOUBLE_EQ(bounds::routing_bsp_m_optimal(10, 1, 1, 10, 5), 5.0);
}

TEST(Bounds, LocalRoutingWorseUnderImbalance) {
  // h >> n/p: the local LB g*h exceeds the global LB max(n/m, h).
  const std::uint32_t p = 256, m = 16;
  const double g = static_cast<double>(p) / m;
  const std::uint64_t n = 1024, h = 512;  // one hot processor
  const double local = bounds::routing_bsp_g(h, h, g, 1);
  const double global = bounds::routing_bsp_m_optimal(n, h, h, m, 1);
  EXPECT_GT(local / global, g / 2);
}

TEST(Bounds, CountNTimeHandComputed) {
  // p=256, m=16, L=4: p/m + L + L lg m / lg L = 16 + 4 + 4*4/2 = 28.
  EXPECT_DOUBLE_EQ(bounds::count_n_time(256, 16, 4), 28.0);
}

TEST(Bounds, UnbalancedSendBoundContainsTau) {
  const double without_tau =
      bounds::routing_bsp_m_optimal(1600, 10, 10, 16, 4);
  const double with_tau = bounds::unbalanced_send_bound(1600, 10, 10, 256, 16, 4, 0.1);
  EXPECT_GT(with_tau, without_tau);
}

TEST(Bounds, ConsecutiveBoundAddsXbarSmall) {
  const double plain = bounds::unbalanced_send_bound(1600, 10, 10, 256, 16, 4, 0.1);
  const double consec =
      bounds::consecutive_send_bound(1600, 10, 10, 10, 256, 16, 4, 0.1);
  EXPECT_GE(consec, plain);
}

TEST(Bounds, FailureProbShrinksWithM) {
  const double small = bounds::unbalanced_send_failure_prob(10000, 16, 0.25);
  const double large = bounds::unbalanced_send_failure_prob(10000, 256, 0.25);
  EXPECT_LT(large, small);
  EXPECT_LE(small, 1.0);
  EXPECT_GE(large, 0.0);
}

TEST(Bounds, LeaderSeparationGrowsWithPOverM) {
  const double sep1 = bounds::er_cr_separation(1 << 10, 32);
  const double sep2 = bounds::er_cr_separation(1 << 16, 32);
  EXPECT_GT(sep2, sep1);
}

TEST(Bounds, LeaderLowerHandComputed) {
  // p=4096, m=64, w=12: p lg m / (2 m w) = 4096*6/(2*64*12) = 16.
  EXPECT_DOUBLE_EQ(bounds::leader_qsm_m_lower(4096, 64, 12), 16.0);
}

TEST(Bounds, LgStarHandComputed) {
  EXPECT_EQ(bounds::lg_star(1), 0u);
  EXPECT_EQ(bounds::lg_star(2), 1u);
  EXPECT_EQ(bounds::lg_star(4), 2u);
  EXPECT_EQ(bounds::lg_star(16), 3u);
  EXPECT_EQ(bounds::lg_star(65536), 4u);
  EXPECT_EQ(bounds::lg_star(1e18), 5u);
}

TEST(Bounds, TransferFactors) {
  // Deterministic: plain g multiplier.
  EXPECT_DOUBLE_EQ(bounds::det_transfer(10, 8), 80.0);
  // Randomized with L >= g lg* p: full g factor survives.
  EXPECT_DOUBLE_EQ(bounds::rand_transfer(10, 8, 8 * 5, 65536), 80.0);
  // Randomized with tiny L: degraded by lg* p (here lg* 65536 = 4).
  EXPECT_NEAR(bounds::rand_transfer(10, 8, 0, 65536), 80.0 / 4, 1e-9);
  // Never exceeds the deterministic transfer.
  for (double L : {0.0, 4.0, 64.0}) {
    EXPECT_LE(bounds::rand_transfer(10, 8, L, 1 << 20),
              bounds::det_transfer(10, 8) + 1e-12);
  }
}

TEST(Bounds, BspGStability) {
  EXPECT_TRUE(bounds::bsp_g_stable(0.24, 4));
  EXPECT_TRUE(bounds::bsp_g_stable(0.25, 4));
  EXPECT_FALSE(bounds::bsp_g_stable(0.26, 4));
}

TEST(Bounds, AlgoBLimitsPositiveForReasonableSlack) {
  // w = 1000, u = 50, a = b = 2, m = 16.
  EXPECT_GT(bounds::algob_alpha_limit(16, 2, 1000, 50), 0.0);
  EXPECT_GT(bounds::algob_beta_limit(2, 1000, 50), 0.0);
  EXPECT_LT(bounds::algob_beta_limit(2, 1000, 50), 0.5);
}

}  // namespace
