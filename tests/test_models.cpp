// Unit tests for the four cost models and penalty functions: each model's
// charging rule is checked against hand-computed superstep costs straight
// from the Section 2 definitions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model/emulation.hpp"
#include "core/model/models.hpp"
#include "core/model/penalty.hpp"

namespace {

using namespace pbw;
using core::ModelParams;
using core::Penalty;
using engine::SuperstepStats;

ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

TEST(Penalty, ZeroForIdleSlot) {
  EXPECT_DOUBLE_EQ(core::overload_charge(0, 4, Penalty::kLinear), 0.0);
  EXPECT_DOUBLE_EQ(core::overload_charge(0, 4, Penalty::kExponential), 0.0);
}

TEST(Penalty, UnitWithinLimit) {
  for (std::uint64_t mt = 1; mt <= 4; ++mt) {
    EXPECT_DOUBLE_EQ(core::overload_charge(mt, 4, Penalty::kLinear), 1.0);
    EXPECT_DOUBLE_EQ(core::overload_charge(mt, 4, Penalty::kExponential), 1.0);
  }
}

TEST(Penalty, LinearAboveLimit) {
  EXPECT_DOUBLE_EQ(core::overload_charge(8, 4, Penalty::kLinear), 2.0);
  EXPECT_DOUBLE_EQ(core::overload_charge(12, 4, Penalty::kLinear), 3.0);
}

TEST(Penalty, ExponentialAboveLimit) {
  EXPECT_NEAR(core::overload_charge(8, 4, Penalty::kExponential), std::exp(1.0),
              1e-12);
  EXPECT_NEAR(core::overload_charge(12, 4, Penalty::kExponential), std::exp(2.0),
              1e-12);
}

TEST(Penalty, ExponentialDominatesLinear) {
  for (std::uint64_t mt = 5; mt < 40; ++mt) {
    EXPECT_GE(core::overload_charge(mt, 4, Penalty::kExponential),
              core::overload_charge(mt, 4, Penalty::kLinear));
  }
}

SuperstepStats bsp_stats(double w, std::uint64_t sent, std::uint64_t recv,
                         std::vector<std::uint64_t> slots) {
  SuperstepStats s;
  s.max_work = w;
  s.max_sent = sent;
  s.max_received = recv;
  s.slot_counts = std::move(slots);
  for (auto c : s.slot_counts) s.total_flits += c;
  return s;
}

TEST(BspG, ChargesMaxOfWorkGhAndL) {
  const core::BspG model(params(16, 4, 4, 10));
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 0, 0, {})), 10.0);   // L
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(50, 0, 0, {})), 50.0);  // w
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 5, 2, {})), 20.0);   // g*h
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 2, 5, {})), 20.0);   // g*recv
}

TEST(BspM, ChargesMaxOfWorkHCmAndL) {
  const core::BspM model(params(16, 4, 4, 2), Penalty::kLinear);
  // Three slots with m_t = 4, 4, 4: c_m = 3.  h = 3.
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 3, 3, {4, 4, 4})), 3.0);
  // Overloaded slot: m_t = 8 on m=4 -> f = 2; c_m = 2.
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 1, 1, {8})), 2.0);
  // L dominates an idle superstep.
  EXPECT_DOUBLE_EQ(model.superstep_cost(bsp_stats(0, 0, 0, {})), 2.0);
}

TEST(BspM, ExponentialPenaltyExplodes) {
  const core::BspM model(params(64, 4, 4, 1), Penalty::kExponential);
  // All 64 processors inject in one slot on m=4: f = e^{16-1} = e^15.
  const double cost = model.superstep_cost(bsp_stats(0, 1, 1, {64}));
  EXPECT_NEAR(cost, std::exp(15.0), 1e-6 * std::exp(15.0));
}

TEST(QsmG, ChargesMaxOfWorkGhAndKappa) {
  const core::QsmG model(params(16, 4, 4, 1));
  SuperstepStats s;
  s.max_reads = 3;
  s.max_writes = 1;
  s.kappa = 2;
  EXPECT_DOUBLE_EQ(model.superstep_cost(s), 12.0);  // g*max(r,w) = 4*3
  s.kappa = 20;
  EXPECT_DOUBLE_EQ(model.superstep_cost(s), 20.0);  // kappa dominates
  // No requests at all: only work counts.
  SuperstepStats idle;
  idle.max_work = 5;
  EXPECT_DOUBLE_EQ(model.superstep_cost(idle), 5.0);
}

TEST(QsmG, ZeroCommunicationSuperstepStillPaysOneGapUnit) {
  // Regression: h = max(1, max_i(r_i, w_i)) was implemented as a no-op
  // (raw_h == 0 ? 0 : max(raw_h, 1)), so a communication-free superstep
  // cost nothing.  The QSM(g) definition charges at least g.
  const core::QsmG model(params(16, 4, 4, 1));
  SuperstepStats idle;
  EXPECT_DOUBLE_EQ(model.superstep_cost(idle), 4.0);  // g * max(1, 0)
  idle.max_work = 2.0;  // still below the gap floor
  EXPECT_DOUBLE_EQ(model.superstep_cost(idle), 4.0);
  idle.kappa = 9;
  EXPECT_DOUBLE_EQ(model.superstep_cost(idle), 9.0);
}

TEST(Penalty, RejectsZeroAggregateLimit) {
  // overload_charge divides by m; m == 0 slipped through when callers
  // bypassed ModelParams::check() and silently produced inf/NaN costs.
  EXPECT_THROW((void)core::overload_charge(5, 0, Penalty::kLinear),
               std::invalid_argument);
  EXPECT_THROW((void)core::overload_charge(5, 0, Penalty::kExponential),
               std::invalid_argument);
}

TEST(Models, ConstructionRejectsZeroAggregateLimit) {
  ModelParams prm = params(8, 2, 4, 1);
  prm.m = 0;
  EXPECT_THROW(core::BspM model(prm), std::invalid_argument);
  EXPECT_THROW(core::QsmM model(prm), std::invalid_argument);
  EXPECT_THROW(core::SelfSchedulingBspM model(prm), std::invalid_argument);
}

TEST(QsmM, ChargesMaxOfWorkHKappaAndCm) {
  const core::QsmM model(params(16, 4, 4, 1), Penalty::kLinear);
  SuperstepStats s;
  s.max_reads = 2;
  s.kappa = 3;
  s.slot_counts = {4, 4};  // c_m = 2
  s.total_requests = 8;
  EXPECT_DOUBLE_EQ(model.superstep_cost(s), 3.0);  // kappa
  s.slot_counts = {16};    // f = 4
  EXPECT_DOUBLE_EQ(model.superstep_cost(s), 4.0);  // c_m
}

TEST(SelfSchedulingBspM, ChargesNOverM) {
  const core::SelfSchedulingBspM model(params(16, 4, 4, 2));
  SuperstepStats s;
  s.max_sent = 2;
  s.max_received = 2;
  s.total_flits = 40;
  // n/m = 10 dominates h = 2 and L = 2; slots are irrelevant.
  EXPECT_DOUBLE_EQ(model.superstep_cost(s), 10.0);
}

TEST(Models, NamesIdentifyParameters) {
  EXPECT_NE(core::BspG(params(8, 2, 4, 3)).name().find("g=2"), std::string::npos);
  EXPECT_NE(core::BspM(params(8, 2, 4, 3)).name().find("m=4"), std::string::npos);
  EXPECT_NE(core::QsmG(params(8, 2, 4, 3)).name().find("QSM"), std::string::npos);
  EXPECT_NE(core::SelfSchedulingBspM(params(8, 2, 4, 3)).name().find("SS-BSP"),
            std::string::npos);
}

TEST(Params, MatchedPairInvariant) {
  const auto prm = ModelParams::matched(64, 8, 4);
  EXPECT_EQ(prm.m, 8u);  // m = p/g
  EXPECT_THROW(params(0, 1, 1, 1).check(), std::invalid_argument);
  EXPECT_THROW(params(4, 0.5, 1, 1).check(), std::invalid_argument);
  EXPECT_THROW(params(4, 1, 0, 1).check(), std::invalid_argument);
}

TEST(Emulation, AtMostMProcsShareASlot) {
  // p = 16, g = 4 (m = 4): over any k, the 16 processors' k-th messages
  // land in 4 distinct substeps with exactly p/g = 4 processors each.
  const double g = 4;
  for (std::uint32_t k = 0; k < 3; ++k) {
    std::map<engine::Slot, int> count;
    for (engine::ProcId i = 0; i < 16; ++i) {
      ++count[core::emulation_slot(i, k, g)];
    }
    EXPECT_EQ(count.size(), 4u);
    for (const auto& [slot, c] : count) EXPECT_EQ(c, 4);
  }
}

TEST(Emulation, SlotsAdvanceWithK) {
  EXPECT_LT(core::emulation_slot(0, 0, 4), core::emulation_slot(0, 1, 4));
  EXPECT_EQ(core::emulation_slot(0, 0, 1), 1u);
}

}  // namespace
