// Trace-replay tests: recost equivalence against fresh simulation for all
// five models and both penalty shapes, tape-recorder scoping, the LRU tape
// cache, the structural/cost-only axis partition, the difference-array
// slot accounting, and executor-level replay == forced-simulation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "obs/trace.hpp"
#include "replay/batch.hpp"
#include "replay/cache.hpp"
#include "replay/recorder.hpp"
#include "replay/tape.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pbw;
using engine::Machine;
using engine::MachineOptions;
using engine::ProcContext;
using engine::SuperstepProgram;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

/// Mixed workload: three message supersteps (scheduled long messages,
/// random fan-out, ring) followed by a shared-memory superstep with
/// contended reads — exercises every stats field a model can charge.
class MixedProgram : public SuperstepProgram {
 public:
  void setup(Machine& machine) override {
    machine.resize_shared(machine.p() + 8);
  }
  bool step(ProcContext& ctx) override {
    switch (ctx.superstep()) {
      case 0:
        // Overlapping long messages: proc i starts 4 flits at slot i+1.
        ctx.send((ctx.id() + 1) % ctx.p(), ctx.id(), ctx.id() + 1, 4);
        return true;
      case 1:
        for (int k = 0; k < 3; ++k) {
          ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
                   ctx.id(), 0, 1);
        }
        ctx.charge(2.5);
        return true;
      case 2:
        ctx.send((ctx.id() + 1) % ctx.p(), ctx.id());
        return true;
      case 3:
        for (int k = 0; k < 2; ++k) {
          ctx.read(ctx.p() + ctx.rng().below(8));
        }
        ctx.write(ctx.id(), ctx.superstep());
        return true;
      default:
        return false;
    }
  }
};

/// All five models (both penalty shapes for the globally-limited pair)
/// over one parameter point.
std::vector<std::unique_ptr<core::ModelBase>> all_models(
    const core::ModelParams& prm) {
  std::vector<std::unique_ptr<core::ModelBase>> models;
  models.push_back(std::make_unique<core::BspG>(prm));
  models.push_back(std::make_unique<core::BspM>(prm, core::Penalty::kLinear));
  models.push_back(
      std::make_unique<core::BspM>(prm, core::Penalty::kExponential));
  models.push_back(std::make_unique<core::QsmG>(prm));
  models.push_back(std::make_unique<core::QsmM>(prm, core::Penalty::kLinear));
  models.push_back(
      std::make_unique<core::QsmM>(prm, core::Penalty::kExponential));
  models.push_back(std::make_unique<core::SelfSchedulingBspM>(prm));
  return models;
}

// ---- recost equivalence ---------------------------------------------------

TEST(Recost, BitEqualToFreshRunAllModels) {
  for (const auto& model : all_models(params(16, 3, 4, 8))) {
    replay::TapeRecorder recorder;
    MachineOptions options;
    options.seed = 7;
    options.trace = true;
    options.tape_recorder = &recorder;
    MixedProgram program;
    Machine machine(*model, options);
    const auto fresh = machine.run(program);

    ASSERT_EQ(recorder.tapes().size(), 1u) << model->name();
    const auto& tape = recorder.tapes().front();
    EXPECT_EQ(tape.captured_model, model->name());
    EXPECT_EQ(tape.p, 16u);
    EXPECT_EQ(tape.seed, 7u);
    EXPECT_EQ(tape.size(), fresh.supersteps);

    const auto recosted = replay::recost(tape, *model);
    EXPECT_TRUE(bits_equal(recosted.total_time, fresh.total_time))
        << model->name();
    ASSERT_EQ(recosted.costs.size(), fresh.trace.size());
    for (std::size_t s = 0; s < fresh.trace.size(); ++s) {
      EXPECT_TRUE(bits_equal(recosted.costs[s], fresh.trace[s].cost))
          << model->name() << " superstep " << s;
    }

    const auto rerun = replay::recost_run(tape, *model, /*trace=*/true);
    EXPECT_TRUE(bits_equal(rerun.total_time, fresh.total_time));
    EXPECT_EQ(rerun.supersteps, fresh.supersteps);
    EXPECT_EQ(rerun.total_messages, fresh.total_messages);
    EXPECT_EQ(rerun.total_flits, fresh.total_flits);
    EXPECT_EQ(rerun.total_reads, fresh.total_reads);
    EXPECT_EQ(rerun.total_writes, fresh.total_writes);
    ASSERT_EQ(rerun.trace.size(), fresh.trace.size());
  }
}

TEST(Recost, AcrossCostParamsMatchesFreshSimulation) {
  // Capture once under one parameter point, recost at others; the fresh
  // machine at the other point (same seed) must agree bit-for-bit.
  replay::TapeRecorder recorder;
  {
    const core::BspG capture_model(params(16, 3, 4, 8));
    MachineOptions options;
    options.seed = 11;
    options.tape_recorder = &recorder;
    MixedProgram program;
    Machine machine(capture_model, options);
    (void)machine.run(program);
  }
  const auto& tape = recorder.tapes().front();

  for (const double g : {1.0, 2.0, 7.5}) {
    for (const double L : {1.0, 64.0}) {
      for (const std::uint32_t m : {1u, 3u, 64u}) {
        for (const auto& model : all_models(params(16, g, m, L))) {
          MachineOptions options;
          options.seed = 11;  // same execution, different charging
          MixedProgram program;
          Machine machine(*model, options);
          const auto fresh = machine.run(program);
          const auto recosted = replay::recost(tape, *model);
          EXPECT_TRUE(bits_equal(recosted.total_time, fresh.total_time))
              << model->name() << " g=" << g << " L=" << L << " m=" << m;
        }
      }
    }
  }
}

TEST(Recost, SinkEmissionMatchesTracedFreshRun) {
  const core::QsmM model(params(16, 3, 4, 8), core::Penalty::kExponential);
  replay::TapeRecorder recorder;
  obs::RecordingSink fresh_sink;
  {
    MachineOptions options;
    options.seed = 3;
    options.tape_recorder = &recorder;
    options.trace_sink = &fresh_sink;
    MixedProgram program;
    Machine machine(model, options);
    (void)machine.run(program);
  }
  obs::RecordingSink replay_sink;
  replay::recost_to_sink(recorder.tapes().front(), model, replay_sink);

  const auto fresh = fresh_sink.runs();
  const auto replayed = replay_sink.runs();
  ASSERT_EQ(fresh.size(), 1u);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].info.model, fresh[0].info.model);
  EXPECT_EQ(replayed[0].info.p, fresh[0].info.p);
  EXPECT_EQ(replayed[0].info.seed, fresh[0].info.seed);
  ASSERT_EQ(replayed[0].records.size(), fresh[0].records.size());
  for (std::size_t s = 0; s < fresh[0].records.size(); ++s) {
    const auto& a = fresh[0].records[s];
    const auto& b = replayed[0].records[s];
    EXPECT_TRUE(bits_equal(a.cost, b.cost)) << s;
    EXPECT_TRUE(bits_equal(a.w, b.w)) << s;
    EXPECT_TRUE(bits_equal(a.gh, b.gh)) << s;
    EXPECT_TRUE(bits_equal(a.h, b.h)) << s;
    EXPECT_TRUE(bits_equal(a.cm, b.cm)) << s;
    EXPECT_TRUE(bits_equal(a.kappa, b.kappa)) << s;
    EXPECT_TRUE(bits_equal(a.L, b.L)) << s;
    EXPECT_STREQ(a.dominant, b.dominant) << s;
  }
  EXPECT_TRUE(bits_equal(replayed[0].summary.total_time,
                         fresh[0].summary.total_time));
}

// ---- zero-superstep / L-floor audits --------------------------------------

/// Terminates in its first superstep without communicating: the machine
/// still executes (and charges) that one superstep, whose stats are all
/// zero and whose slot_counts vector is empty — the L-floor case.
class IdleProgram : public SuperstepProgram {
 public:
  bool step(ProcContext&) override { return false; }
};

TEST(Recost, EmptySlotCountsAndLFloorMatchFreshRun) {
  for (const auto& model : all_models(params(8, 2, 4, 16))) {
    replay::TapeRecorder recorder;
    MachineOptions options;
    options.seed = 11;
    options.tape_recorder = &recorder;
    IdleProgram program;
    Machine machine(*model, options);
    const auto fresh = machine.run(program);
    ASSERT_EQ(fresh.supersteps, 1u) << model->name();

    const auto& tape = recorder.tapes().front();
    ASSERT_EQ(tape.size(), 1u);
    EXPECT_TRUE(tape.slots(0).empty());

    const auto recosted = replay::recost(tape, *model);
    EXPECT_TRUE(bits_equal(recosted.total_time, fresh.total_time))
        << model->name();
    const auto rerun = replay::recost_run(tape, *model);
    EXPECT_TRUE(bits_equal(rerun.total_time, fresh.total_time))
        << model->name();
    EXPECT_EQ(rerun.total_messages, fresh.total_messages);
    EXPECT_EQ(rerun.total_flits, fresh.total_flits);
  }
  // Spot-check the floors themselves: BSP charges L, QSM(g) charges the
  // unit-gap g, QSM(m) charges nothing for an idle superstep.
  replay::TapeRecorder recorder;
  MachineOptions options;
  options.tape_recorder = &recorder;
  IdleProgram program;
  const core::BspG bsp(params(8, 2, 4, 16));
  Machine machine(bsp, options);
  (void)machine.run(program);
  const auto& tape = recorder.tapes().front();
  EXPECT_DOUBLE_EQ(replay::recost(tape, bsp).total_time, 16.0);
  EXPECT_DOUBLE_EQ(
      replay::recost(tape, core::QsmG(params(8, 2, 4, 16))).total_time, 2.0);
  EXPECT_DOUBLE_EQ(
      replay::recost(tape, core::QsmM(params(8, 2, 4, 16),
                                      core::Penalty::kLinear))
          .total_time,
      0.0);
}

TEST(Recost, ZeroSuperstepTapeYieldsZeroTotals) {
  // A tape no machine run ever touched (Machine::run always records at
  // least one superstep, so this arises only synthetically — e.g. an
  // empty TapeGroup slot): recost must return clean zeros, not crash.
  const replay::StatsTape tape;
  const core::BspM model(params(8, 2, 4, 16), core::Penalty::kExponential);
  const auto recosted = replay::recost(tape, model);
  EXPECT_EQ(recosted.supersteps, 0u);
  EXPECT_TRUE(recosted.costs.empty());
  EXPECT_TRUE(bits_equal(recosted.total_time, 0.0));
  const auto rerun = replay::recost_run(tape, model, /*trace=*/true);
  EXPECT_EQ(rerun.supersteps, 0u);
  EXPECT_TRUE(bits_equal(rerun.total_time, 0.0));
  EXPECT_TRUE(rerun.trace.empty());
  EXPECT_TRUE(replay::recost_components(tape, model).empty());
}

// ---- difference-array slot accounting -------------------------------------

TEST(Recost, SlotCountsMatchBruteForcePerFlitTally) {
  // Superstep 0 of MixedProgram: proc i sends 4 flits starting at slot
  // i+1, so slot t (1-based) holds min(t, p, 4, p+4-t) in-flight flits.
  const std::uint32_t p = 16;
  const core::BspM model(params(p, 3, 4, 8));
  replay::TapeRecorder recorder;
  MachineOptions options;
  options.seed = 5;
  options.tape_recorder = &recorder;
  MixedProgram program;
  Machine machine(model, options);
  (void)machine.run(program);

  const auto& tape = recorder.tapes().front();
  ASSERT_GE(tape.size(), 1u);
  std::vector<std::uint64_t> expected(p + 3, 0);  // slots 1 .. p+3
  for (std::uint32_t src = 0; src < p; ++src) {
    for (std::uint32_t k = 0; k < 4; ++k) expected[src + k] += 1;
  }
  EXPECT_EQ(tape.step(0).slot_counts, expected);

  // Superstep 3 issues 2 auto-slot reads (slots 1, 2) and one write
  // (slot 3) per processor.
  ASSERT_GE(tape.size(), 4u);
  EXPECT_EQ(tape.step(3).slot_counts, (std::vector<std::uint64_t>{p, p, p}));
}

// ---- batched recosting ----------------------------------------------------

/// A synthetic tape with every stats field populated from `rng`, empty and
/// overloaded slot vectors included — shapes no single program produces.
replay::StatsTape random_tape(std::uint64_t seed, std::size_t steps) {
  util::Xoshiro256 rng(seed);
  replay::StatsTape tape;
  tape.p = 16;
  tape.seed = seed;
  tape.captured_model = "synthetic";
  for (std::size_t i = 0; i < steps; ++i) {
    engine::SuperstepStats s;
    s.max_work = static_cast<double>(rng.below(1024)) / 8.0;
    s.max_sent = rng.below(256);
    s.max_received = rng.below(256);
    s.total_flits = s.max_sent + rng.below(2048);
    s.max_reads = rng.below(64);
    s.max_writes = rng.below(64);
    s.kappa = rng.below(512);
    s.total_requests = rng.below(128);
    const std::size_t slots = rng.below(6);  // 0 .. 5, empty included
    for (std::size_t t = 0; t < slots; ++t) {
      s.slot_counts.push_back(rng.below(48));  // spans under- and overload
    }
    tape.append(s);
    tape.total_flits += s.total_flits;
  }
  return tape;
}

/// Cycles all five families over varied (g, L, m, penalty) values.
std::vector<replay::CostPointSpec> cost_points(std::size_t count) {
  constexpr replay::ModelFamily kFamilies[5] = {
      replay::ModelFamily::kBspG, replay::ModelFamily::kBspM,
      replay::ModelFamily::kQsmG, replay::ModelFamily::kQsmM,
      replay::ModelFamily::kSelfSchedulingBspM};
  std::vector<replay::CostPointSpec> points;
  points.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    replay::CostPointSpec spec;
    spec.family = kFamilies[k % 5];
    spec.g = 1.0 + static_cast<double>(k % 7);
    spec.L = 1.0 + 3.0 * static_cast<double>(k % 11);
    spec.m = 1 + static_cast<std::uint32_t>(k % 13);
    spec.penalty = (k % 2) == 0 ? core::Penalty::kLinear
                                : core::Penalty::kExponential;
    points.push_back(spec);
  }
  return points;
}

/// The virtual model a CostPointSpec describes, for the scalar reference.
std::unique_ptr<core::ModelBase> model_for(const replay::CostPointSpec& spec,
                                           std::uint32_t p) {
  const core::ModelParams prm = params(p, spec.g, spec.m, spec.L);
  switch (spec.family) {
    case replay::ModelFamily::kBspG:
      return std::make_unique<core::BspG>(prm);
    case replay::ModelFamily::kBspM:
      return std::make_unique<core::BspM>(prm, spec.penalty);
    case replay::ModelFamily::kQsmG:
      return std::make_unique<core::QsmG>(prm);
    case replay::ModelFamily::kQsmM:
      return std::make_unique<core::QsmM>(prm, spec.penalty);
    case replay::ModelFamily::kSelfSchedulingBspM:
      return std::make_unique<core::SelfSchedulingBspM>(prm);
  }
  return nullptr;
}

TEST(RecostBatch, BitEqualToScalarRecostOnRandomTapes) {
  for (const std::uint64_t seed : {3u, 17u, 2026u}) {
    const auto tape = random_tape(seed, 1 + seed % 40);
    for (const std::size_t count : {std::size_t{1}, std::size_t{2},
                                    std::size_t{17}, std::size_t{1000}}) {
      const auto points = cost_points(count);
      const auto batched = replay::recost_batch(tape, points);
      ASSERT_EQ(batched.size(), count);
      for (std::size_t k = 0; k < count; ++k) {
        const auto model = model_for(points[k], tape.p);
        EXPECT_TRUE(bits_equal(batched[k],
                               replay::recost(tape, *model).total_time))
            << "seed " << seed << " point " << k << " (" << model->name()
            << ")";
      }
    }
  }
}

TEST(RecostBatch, BitEqualToScalarRecostOnCapturedTape) {
  // Same contract on a tape a real machine recorded (MixedProgram touches
  // every stats field a model can charge).
  replay::TapeRecorder recorder;
  MachineOptions options;
  options.seed = 23;
  options.tape_recorder = &recorder;
  MixedProgram program;
  const core::BspM capture_model(params(16, 3, 4, 8),
                                 core::Penalty::kExponential);
  Machine machine(capture_model, options);
  (void)machine.run(program);
  const auto& tape = recorder.tapes().front();

  const auto points = cost_points(64);
  const auto batched = replay::recost_batch(tape, points);
  ASSERT_EQ(batched.size(), points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    const auto model = model_for(points[k], tape.p);
    EXPECT_TRUE(
        bits_equal(batched[k], replay::recost(tape, *model).total_time))
        << "point " << k << " (" << model->name() << ")";
  }
}

TEST(RecostBatch, EmptyTapeAndEmptyBatch) {
  const replay::StatsTape empty_tape;
  const auto points = cost_points(5);
  const auto zeros = replay::recost_batch(empty_tape, points);
  ASSERT_EQ(zeros.size(), 5u);
  for (const double total : zeros) EXPECT_TRUE(bits_equal(total, 0.0));

  const auto tape = random_tape(1, 4);
  EXPECT_TRUE(
      replay::recost_batch(tape, std::vector<replay::CostPointSpec>{})
          .empty());
}

TEST(RecostBatch, RejectsInvalidPoints) {
  const auto tape = random_tape(2, 3);
  replay::CostPointSpec bad_g;
  bad_g.family = replay::ModelFamily::kBspG;
  bad_g.g = 0.5;
  EXPECT_THROW(
      (void)replay::recost_batch(tape, std::vector{bad_g}),
      std::invalid_argument);

  replay::CostPointSpec bad_m;
  bad_m.family = replay::ModelFamily::kQsmM;
  bad_m.m = 0;
  EXPECT_THROW(
      (void)replay::recost_batch(tape, std::vector{bad_m}),
      std::invalid_argument);

  replay::CostPointSpec bad_L;
  bad_L.family = replay::ModelFamily::kSelfSchedulingBspM;
  bad_L.L = 0.0;
  EXPECT_THROW(
      (void)replay::recost_batch(tape, std::vector{bad_L}),
      std::invalid_argument);

  // g is unused (and so unchecked) for globally-limited families.
  replay::CostPointSpec unused_g;
  unused_g.family = replay::ModelFamily::kBspM;
  unused_g.g = 0.0;
  EXPECT_NO_THROW((void)replay::recost_batch(tape, std::vector{unused_g}));
}

TEST(RecostBatch, BitEqualOnEveryCompiledKernelPath) {
  // The bit-equality contract holds per dispatch path, not just for
  // whichever one the host picks: pin each compiled+supported kernel in
  // turn and require identical bits across randomized tapes and batch
  // shapes (tails shorter than a vector, ragged tails, multi-group runs).
  const auto paths = replay::available_kernel_paths();
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), simd::Path::kScalar);
  for (const std::uint64_t seed : {5u, 99u}) {
    const auto tape = random_tape(seed, 1 + seed % 48);
    for (const std::size_t count :
         {std::size_t{1}, std::size_t{7}, std::size_t{257},
          std::size_t{4096}}) {
      const auto points = cost_points(count);
      std::vector<engine::SimTime> reference;
      {
        const simd::ScopedPath pin(simd::Path::kScalar);
        reference = replay::recost_batch(tape, points);
      }
      for (const simd::Path path : paths) {
        const simd::ScopedPath pin(path);
        replay::BatchInfo info;
        const auto out = replay::recost_batch(tape, points, nullptr, &info);
        EXPECT_EQ(info.path, path);
        ASSERT_EQ(out.size(), reference.size());
        for (std::size_t k = 0; k < out.size(); ++k) {
          ASSERT_TRUE(bits_equal(out[k], reference[k]))
              << simd::path_name(path) << " seed " << seed << " count "
              << count << " point " << k;
        }
      }
    }
  }
}

TEST(RecostBatch, ThreadPoolResultBitEqualToInline) {
  // Tasks write disjoint output ranges, so the thread count must never
  // change a single bit.  20k points splits into several pool tasks.
  const auto tape = random_tape(7, 25);
  const auto points = cost_points(20000);
  const auto inline_totals = replay::recost_batch(tape, points);
  util::ThreadPool pool(4);
  replay::BatchInfo info;
  const auto pooled = replay::recost_batch(tape, points, &pool, &info);
  ASSERT_EQ(pooled.size(), inline_totals.size());
  for (std::size_t k = 0; k < pooled.size(); ++k) {
    ASSERT_TRUE(bits_equal(pooled[k], inline_totals[k])) << "point " << k;
  }
  EXPECT_GE(info.threads, 1u);
  EXPECT_GT(info.blocks, 0u);
}

TEST(RecostBatch, EmptyBatchReturnsBeforeTouchingTheTape) {
  // Regression: an empty span must return immediately — no term-array
  // derivation, no partition, no allocations.  Observable contract: an
  // empty result, and `info` still carrying its reset defaults (the call
  // returns before any block accounting happens).
  const auto tape = random_tape(3, 64);
  replay::BatchInfo info;
  info.blocks = 1234;
  info.threads = 99;
  const auto out = replay::recost_batch(
      tape, std::span<const replay::CostPointSpec>{}, nullptr, &info);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(info.blocks, 0u);
  EXPECT_EQ(info.threads, 1u);
  EXPECT_TRUE(
      replay::recost_batch(tape, std::vector<replay::CostPointSpec>{})
          .empty());
}

TEST(RecostBatch, InfoReportsPathThreadsAndBlocks) {
  const auto tape = random_tape(13, 9);
  // Three distinct charge blocks: bsp-g, bsp-m @ (m=4, exp), qsm-g —
  // the two bsp-g points coalesce into one block.
  std::vector<replay::CostPointSpec> points(4);
  points[0].family = replay::ModelFamily::kBspG;
  points[1].family = replay::ModelFamily::kBspG;
  points[1].g = 3.0;
  points[2].family = replay::ModelFamily::kBspM;
  points[2].m = 4;
  points[2].penalty = core::Penalty::kExponential;
  points[3].family = replay::ModelFamily::kQsmG;
  const simd::ScopedPath pin(simd::Path::kScalar);
  replay::BatchInfo info;
  (void)replay::recost_batch(tape, points, nullptr, &info);
  EXPECT_EQ(info.path, simd::Path::kScalar);
  EXPECT_EQ(info.threads, 1u);
  EXPECT_EQ(info.blocks, 3u);
}

TEST(RecostBatch, ForceScalarEnvironmentPinsTheKernel) {
  // PBW_FORCE_SCALAR is the ops-facing kill switch; it must reach the
  // batch dispatcher and must not change a single output bit.
  const auto tape = random_tape(21, 17);
  const auto points = cost_points(300);
  const auto reference = replay::recost_batch(tape, points);
  std::optional<std::string> previous;
  if (const char* old = std::getenv("PBW_FORCE_SCALAR")) previous = old;
  ASSERT_EQ(::setenv("PBW_FORCE_SCALAR", "1", 1), 0);
  replay::BatchInfo info;
  const auto forced = replay::recost_batch(tape, points, nullptr, &info);
  if (previous) {
    ::setenv("PBW_FORCE_SCALAR", previous->c_str(), 1);
  } else {
    ::unsetenv("PBW_FORCE_SCALAR");
  }
  EXPECT_EQ(info.path, simd::Path::kScalar);
  ASSERT_EQ(forced.size(), reference.size());
  for (std::size_t k = 0; k < forced.size(); ++k) {
    ASSERT_TRUE(bits_equal(forced[k], reference[k])) << "point " << k;
  }
}

// ---- recorder scoping -----------------------------------------------------

TEST(TapeRecorder, ScopedInstallAndNesting) {
  EXPECT_EQ(replay::current_tape_recorder(), nullptr);
  replay::TapeRecorder outer;
  {
    replay::ScopedTapeRecorder outer_scope(&outer);
    EXPECT_EQ(replay::current_tape_recorder(), &outer);
    replay::TapeRecorder inner;
    {
      replay::ScopedTapeRecorder inner_scope(&inner);
      EXPECT_EQ(replay::current_tape_recorder(), &inner);
      replay::ScopedTapeRecorder suppressed(nullptr);
      EXPECT_EQ(replay::current_tape_recorder(), nullptr);
    }
    EXPECT_EQ(replay::current_tape_recorder(), &outer);
  }
  EXPECT_EQ(replay::current_tape_recorder(), nullptr);
}

TEST(TapeRecorder, MachineCapturesThroughThreadLocalScope) {
  const core::BspG model(params(8, 2, 4, 1));
  replay::TapeRecorder recorder;
  {
    replay::ScopedTapeRecorder scope(&recorder);
    MixedProgram program;
    Machine machine(model);
    (void)machine.run(program);
    (void)machine.run(program);  // one tape per run
  }
  EXPECT_EQ(recorder.tapes().size(), 2u);
  const auto taken = recorder.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(recorder.tapes().empty());
}

// ---- LRU cache ------------------------------------------------------------

std::shared_ptr<replay::TapeGroup> group_of_bytes(std::size_t target) {
  auto group = std::make_shared<replay::TapeGroup>();
  group->trials.emplace_back();
  auto& tape = group->trials.back().tapes.emplace_back();
  while (group->memory_bytes() < target) {
    tape.append(engine::SuperstepStats{});
  }
  return group;
}

TEST(TapeCache, HitMissPromoteEvict) {
  const std::size_t unit = group_of_bytes(0)->memory_bytes();
  replay::TapeCache cache(3 * unit + 16);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);

  cache.put("a", group_of_bytes(0));
  cache.put("b", group_of_bytes(0));
  cache.put("c", group_of_bytes(0));
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_NE(cache.get("a"), nullptr);  // promotes a over b
  EXPECT_EQ(cache.hits(), 1u);

  cache.put("d", group_of_bytes(0));  // evicts b (least recently used)
  EXPECT_EQ(cache.entries(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_NE(cache.get("d"), nullptr);
}

TEST(TapeCache, ReplaceUpdatesBytes) {
  replay::TapeCache cache(1 << 20);
  cache.put("k", group_of_bytes(0));
  const auto small = cache.bytes();
  cache.put("k", group_of_bytes(4096));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), small);
}

TEST(TapeCache, OversizedGroupDroppedButCallerKeepsIt) {
  replay::TapeCache cache(64);  // smaller than any group
  auto group = group_of_bytes(4096);
  cache.put("big", group);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.get("big"), nullptr);
  EXPECT_GE(group->memory_bytes(), 4096u);  // caller's reference unaffected
}

TEST(TapeCache, ZeroCapDisables) {
  replay::TapeCache cache(0);
  cache.put("k", group_of_bytes(0));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.get("k"), nullptr);
  EXPECT_EQ(cache.rejected(), 1u);
}

TEST(TapeCache, OversizedReplacementKeepsExistingEntry) {
  // Regression: put() used to erase the existing entry for the key before
  // discovering the replacement was over cap, leaving NEITHER group cached
  // — every later get() re-simulated.  The oversized replacement must be
  // rejected without touching the entry already serving hits.
  const std::size_t unit = group_of_bytes(0)->memory_bytes();
  replay::TapeCache cache(2 * unit);
  auto original = group_of_bytes(0);
  cache.put("k", original);
  ASSERT_EQ(cache.entries(), 1u);

  cache.put("k", group_of_bytes(16 * unit));  // over cap: reject, keep old
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.rejected(), 1u);
  EXPECT_EQ(cache.get("k"), original);
  EXPECT_EQ(cache.bytes(), original->memory_bytes());
}

TEST(TapeCache, EvictionDrainsToTheLastEntry) {
  // Regression: evict_over_cap stopped at lru_.size() > 1, so the cache
  // could sit permanently over cap with one resident entry.  A fitting
  // insertion must be able to evict EVERY older entry to get under cap.
  const auto big = group_of_bytes(4096);
  const std::size_t big_bytes = big->memory_bytes();
  replay::TapeCache cache(big_bytes + big_bytes / 2);
  cache.put("a", big);
  cache.put("b", group_of_bytes(4096));  // a + b over cap: a must go
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("b"), nullptr);
  EXPECT_LE(cache.bytes(), big_bytes + big_bytes / 2);
}

// ---- axis partition -------------------------------------------------------

campaign::ParamSet point_of(const campaign::Scenario& scenario,
                            std::initializer_list<
                                std::pair<const char*, const char*>>
                                overrides) {
  campaign::ParamSet params;
  for (const auto& p : scenario.params) params.set(p.name, p.default_value);
  for (const auto& [k, v] : overrides) params.set(k, v);
  return params;
}

TEST(AxisSplit, GridScenarioIsAllCostOnlyButStructure) {
  const auto* grid = campaign::Registry::instance().find("grid.pattern");
  ASSERT_NE(grid, nullptr);
  const auto split = campaign::split_axes(*grid, point_of(*grid, {}));
  EXPECT_EQ(split.structural,
            (std::vector<std::string>{"pattern", "p", "h", "rounds"}));
  EXPECT_EQ(split.cost_only,
            (std::vector<std::string>{"model", "g", "L", "m", "penalty"}));
}

TEST(AxisSplit, Table1OneToAllDependsOnFamily) {
  const auto* s = campaign::Registry::instance().find("table1.one_to_all");
  ASSERT_NE(s, nullptr);
  const auto bsp = campaign::split_axes(*s, point_of(*s, {{"family", "bsp"}}));
  EXPECT_EQ(bsp.cost_only, (std::vector<std::string>{"g", "L"}));
  const auto qsm = campaign::split_axes(*s, point_of(*s, {{"family", "qsm"}}));
  EXPECT_EQ(qsm.cost_only, (std::vector<std::string>{"L"}));
}

TEST(AxisSplit, PenaltyMDependsOnSchedule) {
  const auto* s = campaign::Registry::instance().find("sched.penalty");
  ASSERT_NE(s, nullptr);
  const auto naive =
      campaign::split_axes(*s, point_of(*s, {{"schedule", "naive"}}));
  EXPECT_EQ(naive.cost_only, (std::vector<std::string>{"m", "penalty"}));
  const auto offline =
      campaign::split_axes(*s, point_of(*s, {{"schedule", "offline"}}));
  EXPECT_EQ(offline.cost_only, (std::vector<std::string>{"penalty"}));
}

TEST(AxisSplit, NonReplayableScenarioIsAllStructural) {
  const auto* s = campaign::Registry::instance().find("broadcast.bounds");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->replayable());
  const auto split = campaign::split_axes(*s, point_of(*s, {}));
  EXPECT_TRUE(split.cost_only.empty());
  EXPECT_EQ(split.structural.size(), s->params.size());
}

TEST(AxisSplit, KeysDropOnlyCostOnlyAxes) {
  const auto* s = campaign::Registry::instance().find("grid.pattern");
  ASSERT_NE(s, nullptr);
  campaign::Job job;
  job.scenario = s;
  job.params = point_of(*s, {{"g", "2"}, {"m", "64"}});
  job.seed = 9;
  job.trials = 3;
  EXPECT_EQ(job.rng_key(),
            "grid.pattern|h=8,p=256,pattern=random,rounds=4|seed=9");
  EXPECT_EQ(job.structural_key(), job.rng_key() + "|trials=3");

  const auto* plain = campaign::Registry::instance().find("broadcast.bounds");
  campaign::Job other;
  other.scenario = plain;
  other.params = point_of(*plain, {});
  other.seed = 2;
  EXPECT_EQ(other.rng_key(), other.base_key());
}

// ---- executor-level equivalence -------------------------------------------

std::string temp_out(const std::string& stem) {
  const auto path =
      (std::filesystem::temp_directory_path() / (stem + ".jsonl")).string();
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  return path;
}

const char* kEquivalenceSpec = R"(
[sweep]
scenario = grid.pattern
trials   = 2
seeds    = 1
pattern  = ring
p        = 32
h        = 6
rounds   = 3
model    = bsp-g, bsp-m, qsm-m, ss-bsp-m
g        = 2, 8
L        = 4, 32
m        = 4, 64
penalty  = linear, exp
[sweep]
scenario = table1.one_to_all
trials   = 2
seeds    = 1, 2
family   = bsp, qsm
p        = 64
g        = 4, 8
L        = 8, 64
[sweep]
scenario = table1.summation
trials   = 1
seeds    = 1
family   = bsp, qsm
p        = 64
L        = 8, 64
[sweep]
scenario = sched.penalty
trials   = 2
seeds    = 1
p        = 32
n        = 512
schedule = naive, offline
m        = 4, 16
penalty  = linear, exp
)";

/// Runs the spec with the given options and returns key -> aggregated
/// metrics JSON text.
std::map<std::string, std::string> run_spec(
    const std::string& stem, const campaign::ExecutorOptions& options,
    campaign::RunStats* stats_out = nullptr) {
  const auto specs = campaign::parse_spec(kEquivalenceSpec);
  const auto jobs =
      campaign::expand_all(specs, campaign::Registry::instance());
  const auto path = temp_out(stem);
  std::map<std::string, std::string> rows;
  {
    campaign::Recorder recorder(path, "test");
    const auto stats = campaign::run_campaign(jobs, recorder, options);
    if (stats_out != nullptr) *stats_out = stats;
  }
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto rec = util::Json::parse(line);
    rows[rec.get("key")->as_string()] = rec.get("metrics")->dump();
  }
  return rows;
}

TEST(ExecutorReplay, RecostedRowsBitEqualForcedSimulation) {
  campaign::ExecutorOptions with_replay;
  with_replay.threads = 4;
  campaign::RunStats replay_stats;
  const auto replayed =
      run_spec("pbw_replay_on", with_replay, &replay_stats);
  EXPECT_GT(replay_stats.recosted, 0u);
  // grid.pattern has a replay_batch hook and a multi-member cost-only
  // group, so at least its members go through the batched path.
  EXPECT_GT(replay_stats.batched, 0u);
  EXPECT_LT(replay_stats.simulated, replay_stats.executed);
  EXPECT_EQ(replay_stats.simulated + replay_stats.recosted,
            replay_stats.executed);

  campaign::ExecutorOptions no_replay;
  no_replay.threads = 4;
  no_replay.replay = false;
  campaign::RunStats sim_stats;
  const auto simulated = run_spec("pbw_replay_off", no_replay, &sim_stats);
  EXPECT_EQ(sim_stats.recosted, 0u);
  EXPECT_EQ(sim_stats.simulated, sim_stats.executed);

  ASSERT_EQ(replayed.size(), simulated.size());
  for (const auto& [key, metrics] : simulated) {
    const auto it = replayed.find(key);
    ASSERT_NE(it, replayed.end()) << key;
    EXPECT_EQ(it->second, metrics) << key;
  }
}

TEST(ExecutorReplay, ReplayCheckPassesOnEveryRecostedJob) {
  campaign::ExecutorOptions options;
  options.threads = 4;
  options.replay_check = true;
  campaign::RunStats stats;
  (void)run_spec("pbw_replay_check", options, &stats);
  EXPECT_GT(stats.recosted, 0u);
  EXPECT_GT(stats.batched, 0u);  // the check covers batch-recosted jobs too
  EXPECT_EQ(stats.checked, stats.recosted);
}

TEST(ExecutorReplay, BatchedRowsBitEqualPerPointReplay) {
  // The batched path must record exactly the rows the per-point replay
  // path records.  A --trace-dir forces the per-point path (it is what
  // emits replayed trace records), so the same spec run both ways pins
  // the two paths against each other.
  campaign::ExecutorOptions batched;
  batched.threads = 2;
  campaign::RunStats batched_stats;
  const auto batch_rows =
      run_spec("pbw_replay_batched", batched, &batched_stats);
  EXPECT_GT(batched_stats.batched, 0u);

  campaign::ExecutorOptions per_point;
  per_point.threads = 2;
  per_point.trace_dir =
      (std::filesystem::temp_directory_path() / "pbw_batch_traces").string();
  campaign::RunStats per_point_stats;
  const auto point_rows =
      run_spec("pbw_replay_per_point", per_point, &per_point_stats);
  EXPECT_EQ(per_point_stats.batched, 0u);
  EXPECT_GT(per_point_stats.recosted, 0u);
  std::filesystem::remove_all(per_point.trace_dir);

  ASSERT_EQ(batch_rows.size(), point_rows.size());
  for (const auto& [key, metrics] : point_rows) {
    const auto it = batch_rows.find(key);
    ASSERT_NE(it, batch_rows.end()) << key;
    EXPECT_EQ(it->second, metrics) << key;
  }
}

TEST(ExecutorReplay, CheckCatchesBrokenReplay) {
  // A scenario whose replay deliberately disagrees with run: the check
  // must fail the campaign.
  campaign::Registry registry;
  campaign::Scenario s;
  s.name = "toy.broken";
  s.params = {{"x", "1", "", /*cost_only=*/true}};
  s.run = [](const campaign::ParamSet& params, util::Xoshiro256&) {
    return campaign::MetricRow{{"v", params.get_double("x")}};
  };
  s.replay = [](const campaign::ParamSet&, const replay::CapturedTrial&) {
    return campaign::MetricRow{{"v", -1.0}};
  };
  registry.add(std::move(s));

  campaign::SweepSpec spec;
  spec.scenario = "toy.broken";
  spec.axes = {{"x", {"1", "2"}}};
  const auto jobs = campaign::expand(spec, registry);

  campaign::ExecutorOptions options;
  options.replay_check = true;
  campaign::Recorder recorder(temp_out("pbw_replay_broken"), "test");
  EXPECT_THROW(campaign::run_campaign(jobs, recorder, options),
               std::runtime_error);
}

}  // namespace
