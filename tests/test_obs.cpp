// Observability layer tests: metrics registry, the trace sink chain, the
// JSONL / Chrome exporters (golden output — the JSONL schema is an
// interchange format, so its bytes are contract), the schema validator,
// and dominant-term attribution hand-checked against Section 2's cost
// definitions for all four models.
//
// The TraceSchema suite validates an externally produced trace file named
// by PBW_TRACE_FILE (skipped when unset); CI points it at the output of
// `bench_table1 --trace` as the end-to-end smoke.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>

#include "core/model/models.hpp"
#include "core/trace_report.hpp"
#include "engine/machine.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace pbw;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, CounterFindOrCreateAndAdd) {
  obs::MetricsRegistry registry;
  auto& c = registry.counter("jobs");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same series.
  EXPECT_EQ(&registry.counter("jobs"), &c);
  EXPECT_EQ(registry.counter("jobs").value(), 5u);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  auto& g = registry.gauge("depth");
  g.set(2.5);
  g.add(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Metrics, HistogramMomentsAndJson) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("latency", 0.0, 10.0, 5);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(9.0);
  const util::Json j = h.to_json();
  EXPECT_EQ(j.get("count")->as_int(), 3);
  EXPECT_DOUBLE_EQ(j.get("sum")->as_double(), 13.0);
  EXPECT_DOUBLE_EQ(j.get("mean")->as_double(), 13.0 / 3.0);
  EXPECT_DOUBLE_EQ(j.get("min")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(j.get("max")->as_double(), 9.0);
  ASSERT_NE(j.get("buckets"), nullptr);
  EXPECT_EQ(j.get("buckets")->size(), 5u);
}

TEST(Metrics, ToJsonSortsNamesAndResetClears) {
  obs::MetricsRegistry registry;
  registry.counter("zeta").add(1);
  registry.counter("alpha").add(2);
  registry.gauge("mid").set(7);
  const util::Json j = registry.to_json();
  const auto& counters = j.get("counters")->members();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[1].first, "zeta");
  EXPECT_DOUBLE_EQ(j.get("gauges")->get("mid")->as_double(), 7.0);
  registry.reset();
  EXPECT_EQ(registry.to_json().get("counters")->members().size(), 0u);
  EXPECT_EQ(registry.counter("zeta").value(), 0u);
}

// ---- sink chain ------------------------------------------------------------

TEST(TraceSink, RecordingSinkGroupsRunsSequentially) {
  obs::RecordingSink sink;
  const auto r0 = sink.begin_run({"A", 4, 1});
  const auto r1 = sink.begin_run({"B", 8, 2});
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  obs::SuperstepTraceRecord rec;
  rec.cost = 5.0;
  sink.record(r1, rec);
  sink.end_run(r1, {1, 5.0});
  const auto runs = sink.runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_FALSE(runs[0].finished);
  EXPECT_TRUE(runs[1].finished);
  EXPECT_EQ(runs[1].records.size(), 1u);
  EXPECT_EQ(runs[1].summary.supersteps, 1u);
  EXPECT_THROW(sink.record(99, rec), std::logic_error);
  EXPECT_THROW(sink.end_run(99, {}), std::logic_error);
}

TEST(TraceSink, ScopedSinkOverridesAndRestores) {
  ASSERT_EQ(obs::current_sink(), nullptr);
  obs::RecordingSink process;
  obs::set_process_sink(&process);
  EXPECT_EQ(obs::current_sink(), &process);
  {
    obs::RecordingSink a;
    obs::ScopedSink scope_a(&a);
    EXPECT_EQ(obs::current_sink(), &a);
    {
      // nullptr suppresses tracing even with a process sink installed.
      obs::ScopedSink scope_off(nullptr);
      EXPECT_EQ(obs::current_sink(), nullptr);
      {
        obs::RecordingSink b;
        obs::ScopedSink scope_b(&b);
        EXPECT_EQ(obs::current_sink(), &b);
      }
      // The inner scope must restore the *suppression*, not the process sink.
      EXPECT_EQ(obs::current_sink(), nullptr);
    }
    EXPECT_EQ(obs::current_sink(), &a);
  }
  EXPECT_EQ(obs::current_sink(), &process);
  obs::set_process_sink(nullptr);
  EXPECT_EQ(obs::current_sink(), nullptr);
}

// ---- dominant-term attribution, hand-computed ------------------------------

TEST(CostComponents, BspGSplitsWorkGapLatency) {
  const core::BspG model(params(8, 3, 2, 5));
  engine::SuperstepStats stats;
  stats.max_work = 10.0;
  stats.max_sent = 4;
  stats.max_received = 6;  // h = max(4, 6) = 6
  const auto c = model.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.w, 10.0);
  EXPECT_DOUBLE_EQ(c.gh, 18.0);  // g*h = 3*6
  EXPECT_DOUBLE_EQ(c.h, 0.0);
  EXPECT_DOUBLE_EQ(c.cm, 0.0);
  EXPECT_DOUBLE_EQ(c.kappa, 0.0);
  EXPECT_DOUBLE_EQ(c.L, 5.0);
  EXPECT_DOUBLE_EQ(c.max_term(), 18.0);
  EXPECT_STREQ(c.dominant(), "gh");
  EXPECT_DOUBLE_EQ(model.superstep_cost(stats), c.max_term());
}

TEST(CostComponents, BspMChargesPlainHAndAggregate) {
  engine::SuperstepStats stats;
  stats.max_work = 1.0;
  stats.max_sent = 6;
  stats.max_received = 5;  // h = 6
  stats.slot_counts = {8, 2};  // f_4(8) + f_4(2)

  const core::BspM linear(params(8, 2, 4, 2), core::Penalty::kLinear);
  auto c = linear.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.w, 1.0);
  EXPECT_DOUBLE_EQ(c.gh, 0.0);
  EXPECT_DOUBLE_EQ(c.h, 6.0);
  EXPECT_DOUBLE_EQ(c.cm, 8.0 / 4.0 + 1.0);  // linear: m_t/m, then 1
  EXPECT_DOUBLE_EQ(c.L, 2.0);
  EXPECT_STREQ(c.dominant(), "h");
  EXPECT_DOUBLE_EQ(linear.superstep_cost(stats), 6.0);

  const core::BspM expo(params(8, 2, 4, 2), core::Penalty::kExponential);
  c = expo.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.cm, std::exp(8.0 / 4.0 - 1.0) + 1.0);
  EXPECT_DOUBLE_EQ(expo.superstep_cost(stats), c.max_term());
}

TEST(CostComponents, QsmGChargesUnitGapFloorAndContention) {
  const core::QsmG model(params(8, 3, 2, 1));
  engine::SuperstepStats stats;
  stats.max_work = 1.0;
  stats.kappa = 2;
  // No reads or writes: QSM still charges h = max(1, ...) => g*1.
  auto c = model.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.gh, 3.0);
  EXPECT_DOUBLE_EQ(c.kappa, 2.0);
  EXPECT_DOUBLE_EQ(c.L, 0.0);  // QSM has no latency term
  EXPECT_STREQ(c.dominant(), "gh");
  EXPECT_DOUBLE_EQ(model.superstep_cost(stats), 3.0);

  stats.max_reads = 5;
  stats.kappa = 20;
  c = model.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.gh, 15.0);
  EXPECT_DOUBLE_EQ(c.kappa, 20.0);
  EXPECT_STREQ(c.dominant(), "kappa");
  EXPECT_DOUBLE_EQ(model.superstep_cost(stats), 20.0);
}

TEST(CostComponents, QsmMChargesContentionOverAggregate) {
  const core::QsmM model(params(8, 2, 4, 1));
  engine::SuperstepStats stats;
  stats.max_work = 1.0;
  stats.max_reads = 3;
  stats.max_writes = 7;  // h = 7
  stats.kappa = 9;
  stats.slot_counts = {4};  // f_4(4) = 1
  const auto c = model.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.h, 7.0);
  EXPECT_DOUBLE_EQ(c.cm, 1.0);
  EXPECT_DOUBLE_EQ(c.kappa, 9.0);
  EXPECT_DOUBLE_EQ(c.gh, 0.0);
  EXPECT_STREQ(c.dominant(), "kappa");
  EXPECT_DOUBLE_EQ(model.superstep_cost(stats), 9.0);
}

TEST(CostComponents, SelfSchedulingChargesVolumeOverM) {
  const core::SelfSchedulingBspM model(params(8, 2, 4, 2));
  engine::SuperstepStats stats;
  stats.max_sent = 3;
  stats.total_flits = 40;  // n/m = 10
  const auto c = model.cost_components(stats);
  EXPECT_DOUBLE_EQ(c.h, 3.0);
  EXPECT_DOUBLE_EQ(c.cm, 10.0);
  EXPECT_DOUBLE_EQ(c.L, 2.0);
  EXPECT_STREQ(c.dominant(), "cm");
  EXPECT_DOUBLE_EQ(model.superstep_cost(stats), 10.0);
}

TEST(CostComponents, TiesBreakInDeclarationOrder) {
  engine::CostComponents c;
  c.w = 5.0;
  c.gh = 5.0;
  c.L = 5.0;
  EXPECT_STREQ(c.dominant(), "w");
  c.w = 4.0;
  EXPECT_STREQ(c.dominant(), "gh");
}

TEST(CostComponents, NaNPoisonsMaxTermAndDominant) {
  // A NaN term must surface, not vanish: before the isnan guards every
  // `NaN > v` / `NaN >= v` comparison was false, so max_term() silently
  // returned the largest finite term and dominant() fell through to "w".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  engine::CostComponents c;
  c.w = 3.0;
  c.h = nan;
  c.L = 9.0;
  EXPECT_TRUE(std::isnan(c.max_term()));
  EXPECT_STREQ(c.dominant(), "h");

  engine::CostComponents all_nan;
  all_nan.w = all_nan.gh = all_nan.h = all_nan.cm = all_nan.kappa =
      all_nan.L = nan;
  EXPECT_TRUE(std::isnan(all_nan.max_term()));
  EXPECT_STREQ(all_nan.dominant(), "w");  // first NaN in field order

  engine::CostComponents late;
  late.w = 1.0;
  late.L = nan;
  EXPECT_TRUE(std::isnan(late.max_term()));
  EXPECT_STREQ(late.dominant(), "L");
}

TEST(CostComponents, DefaultImplementationAttributesToWork) {
  // Models that never override cost_components still satisfy the
  // max_term() == superstep_cost() contract.
  struct FlatModel final : engine::CostModel {
    engine::SimTime superstep_cost(const engine::SuperstepStats&) const override {
      return 42.0;
    }
    std::string name() const override { return "flat"; }
    std::uint32_t processors() const override { return 1; }
  };
  const FlatModel model;
  const auto c = model.cost_components({});
  EXPECT_DOUBLE_EQ(c.w, 42.0);
  EXPECT_STREQ(c.dominant(), "w");
  EXPECT_DOUBLE_EQ(c.max_term(), 42.0);
}

// ---- engine emission -------------------------------------------------------

/// Two supersteps: a len-8 send around a ring (gh-bound on BSP(g)), then a
/// quiet superstep (L-bound).
class RingProgram final : public engine::SuperstepProgram {
 public:
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() >= 1) return false;
    ctx.charge(3.0);
    ctx.send((ctx.id() + 1) % ctx.p(), 1, 0, 8);
    return true;
  }
};

TEST(EngineEmission, RecordsMatchRunTrace) {
  const core::BspG model(params(4, 2, 2, 8));
  obs::RecordingSink sink;
  engine::MachineOptions opts;
  opts.trace = true;
  opts.trace_sink = &sink;
  RingProgram program;
  engine::Machine machine(model, opts);
  const auto run = machine.run(program);

  const auto runs = sink.runs();
  ASSERT_EQ(runs.size(), 1u);
  const auto& traced = runs[0];
  EXPECT_TRUE(traced.finished);
  EXPECT_EQ(traced.info.model, model.name());
  EXPECT_EQ(traced.info.p, 4u);
  EXPECT_EQ(traced.info.seed, opts.seed);
  EXPECT_EQ(traced.summary.supersteps, run.supersteps);
  EXPECT_DOUBLE_EQ(traced.summary.total_time, run.total_time);

  ASSERT_EQ(run.supersteps, 2u);
  ASSERT_EQ(traced.records.size(), 2u);
  // Superstep 0: max(w=3, g*h=2*8, L=8) = 16.
  EXPECT_DOUBLE_EQ(traced.records[0].cost, 16.0);
  EXPECT_DOUBLE_EQ(traced.records[0].w, 3.0);
  EXPECT_DOUBLE_EQ(traced.records[0].gh, 16.0);
  EXPECT_STREQ(traced.records[0].dominant, "gh");
  // Superstep 1: nothing happens, the L floor binds.
  EXPECT_DOUBLE_EQ(traced.records[1].cost, 8.0);
  EXPECT_STREQ(traced.records[1].dominant, "L");
  for (std::size_t s = 0; s < traced.records.size(); ++s) {
    EXPECT_EQ(traced.records[s].superstep, s);
    EXPECT_DOUBLE_EQ(traced.records[s].cost, run.trace[s].cost);
  }
  EXPECT_DOUBLE_EQ(run.total_time, 24.0);
}

TEST(EngineEmission, NoSinkMeansNoTracing) {
  ASSERT_EQ(obs::current_sink(), nullptr);
  const core::BspG model(params(4, 2, 2, 8));
  RingProgram program;
  engine::Machine machine(model);
  EXPECT_NO_THROW(machine.run(program));
}

TEST(EngineEmission, ThreadLocalScopedSinkReachesMachine) {
  const core::BspG model(params(4, 2, 2, 8));
  obs::RecordingSink sink;
  {
    obs::ScopedSink scope(&sink);
    RingProgram program;
    engine::Machine machine(model);
    (void)machine.run(program);
  }
  EXPECT_EQ(sink.run_count(), 1u);
  EXPECT_TRUE(sink.runs()[0].finished);
}

TEST(TraceReport, ModelDrivenAnalyzeMatchesParamsDriven) {
  const auto prm = params(4, 2, 2, 8);
  const core::BspG model(prm);
  engine::MachineOptions opts;
  opts.trace = true;
  RingProgram program;
  engine::Machine machine(model, opts);
  const auto run = machine.run(program);

  const auto by_model = core::analyze_trace(run, model);
  const auto by_params =
      core::analyze_trace(run, prm, core::TraceModel::kBspG);
  EXPECT_DOUBLE_EQ(by_model.work, by_params.work);
  EXPECT_DOUBLE_EQ(by_model.gap, by_params.gap);
  EXPECT_DOUBLE_EQ(by_model.aggregate, by_params.aggregate);
  EXPECT_DOUBLE_EQ(by_model.contention, by_params.contention);
  EXPECT_DOUBLE_EQ(by_model.latency, by_params.latency);
  EXPECT_EQ(by_model.supersteps, by_params.supersteps);
  EXPECT_DOUBLE_EQ(by_model.total, run.total_time);
  EXPECT_DOUBLE_EQ(by_model.gap, 16.0);
  EXPECT_DOUBLE_EQ(by_model.latency, 8.0);
}

// ---- exporters -------------------------------------------------------------

std::vector<obs::TraceRun> golden_runs() {
  obs::RecordingSink sink;
  const auto run = sink.begin_run({"BSP(g=2,L=8,p=4)", 4, 9});
  obs::SuperstepTraceRecord rec;
  rec.superstep = 0;
  rec.cost = 16.0;
  rec.w = 3.0;
  rec.gh = 16.0;
  rec.L = 8.0;
  rec.dominant = "gh";
  sink.record(run, rec);
  obs::SuperstepTraceRecord quiet;
  quiet.superstep = 1;
  quiet.cost = 8.0;
  quiet.L = 8.0;
  quiet.dominant = "L";
  sink.record(run, quiet);
  sink.end_run(run, {2, 24.0});
  return sink.runs();
}

// The JSONL schema is an interchange contract (docs/OBSERVABILITY.md
// documents these exact lines) — byte-exact golden comparison.
TEST(Export, GoldenJsonl) {
  std::ostringstream out;
  obs::write_jsonl(golden_runs(), out);
  const std::string expected =
      R"json({"type":"run","run":0,"model":"BSP(g=2,L=8,p=4)","p":4,"seed":9})json"
      "\n"
      R"json({"type":"superstep","run":0,"superstep":0,"cost":16,"w":3,"gh":16,"h":0,"cm":0,"kappa":0,"L":8,"dominant":"gh","step_ns":0,"merge_ns":0})json"
      "\n"
      R"json({"type":"superstep","run":0,"superstep":1,"cost":8,"w":0,"gh":0,"h":0,"cm":0,"kappa":0,"L":8,"dominant":"L","step_ns":0,"merge_ns":0})json"
      "\n"
      R"json({"type":"run_end","run":0,"supersteps":2,"total_time":24})json"
      "\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Export, ChromeTraceShapesEvents) {
  std::ostringstream out;
  obs::write_chrome_trace(golden_runs(), out);
  const util::Json root = util::Json::parse(out.str());
  const util::Json* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 metadata + 2 * (slice + counter).
  ASSERT_EQ(events->size(), 5u);
  const auto& meta = events->at(0);
  EXPECT_EQ(meta.get("ph")->as_string(), "M");
  EXPECT_EQ(meta.get("args")->get("name")->as_string(), "BSP(g=2,L=8,p=4)");
  const auto& slice0 = events->at(1);
  EXPECT_EQ(slice0.get("ph")->as_string(), "X");
  EXPECT_EQ(slice0.get("name")->as_string(), "gh");
  EXPECT_DOUBLE_EQ(slice0.get("ts")->as_double(), 0.0);
  EXPECT_DOUBLE_EQ(slice0.get("dur")->as_double(), 16.0);
  const auto& counter0 = events->at(2);
  EXPECT_EQ(counter0.get("ph")->as_string(), "C");
  EXPECT_DOUBLE_EQ(counter0.get("args")->get("gh")->as_double(), 16.0);
  // The second slice starts where the first ended: the simulated-time axis.
  const auto& slice1 = events->at(3);
  EXPECT_DOUBLE_EQ(slice1.get("ts")->as_double(), 16.0);
  EXPECT_EQ(slice1.get("name")->as_string(), "L");
}

// ---- schema validator ------------------------------------------------------

obs::TraceValidation validate(const std::string& text) {
  std::istringstream in(text);
  return obs::validate_trace_jsonl(in);
}

TEST(Validator, AcceptsGoldenStream) {
  std::ostringstream out;
  obs::write_jsonl(golden_runs(), out);
  const auto v = validate(out.str());
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.runs, 1u);
  EXPECT_EQ(v.supersteps, 2u);
}

TEST(Validator, RejectsMalformedStreams) {
  const std::string run =
      R"json({"type":"run","run":0,"model":"M","p":1,"seed":1})json" "\n";
  const std::string step =
      R"json({"type":"superstep","run":0,"superstep":0,"cost":1,"w":1,"gh":0,"h":0,"cm":0,"kappa":0,"L":0,"dominant":"w","step_ns":0,"merge_ns":0})json"
      "\n";
  const std::string end =
      R"json({"type":"run_end","run":0,"supersteps":1,"total_time":1})json" "\n";

  auto expect_fail = [](const std::string& text, const char* fragment) {
    const auto v = validate(text);
    EXPECT_FALSE(v.ok) << "expected failure: " << fragment;
    EXPECT_NE(v.error.find(fragment), std::string::npos) << v.error;
  };

  expect_fail("not json\n", "not JSON");
  expect_fail(R"json({"type":"mystery","run":0})json" "\n", "unknown record type");
  expect_fail(step, "before its run header");
  expect_fail(run + step, "has no run_end");
  expect_fail(run +
                  R"json({"type":"superstep","run":0,"superstep":0,"cost":1,"w":1,"gh":0,"h":0,"cm":0,"kappa":0,"L":0,"dominant":"zz","step_ns":0,"merge_ns":0})json"
                  "\n" + end,
              "dominant must name a cost component");
  // Skipping superstep 0 breaks the consecutive-index invariant.
  expect_fail(run +
                  R"json({"type":"superstep","run":0,"superstep":1,"cost":1,"w":1,"gh":0,"h":0,"cm":0,"kappa":0,"L":0,"dominant":"w","step_ns":0,"merge_ns":0})json"
                  "\n" + end,
              "not consecutive");
  expect_fail(run + R"json({"type":"run_end","run":0,"supersteps":3,"total_time":1})json"
                  "\n",
              "count mismatch");
  expect_fail(run + run, "duplicate run header");
  // Errors carry the 1-based line number.
  const auto v = validate(run + step + "garbage\n");
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("line 3"), std::string::npos) << v.error;
}

// ---- end-to-end file trace (CI smoke hook) ---------------------------------

TEST(TraceSchema, ValidatesFileNamedByEnv) {
  const char* path = std::getenv("PBW_TRACE_FILE");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "PBW_TRACE_FILE not set";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open " << path;
  const auto v = obs::validate_trace_jsonl(in);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_GT(v.runs, 0u);
  EXPECT_GT(v.supersteps, 0u);
}

}  // namespace
