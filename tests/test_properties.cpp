// Statistical and cross-cutting property tests: empirical validation of
// the Chernoff-based guarantees behind Theorem 6.2, slot-occupancy
// distributions, and wide parameter sweeps of the Section 4 algorithms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algos/broadcast.hpp"
#include "algos/gossip.hpp"
#include "algos/list_ranking.hpp"
#include "algos/reduce.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace {

using namespace pbw;
using core::ModelParams;
using core::Penalty;

ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

// ---- empirical Chernoff validation -------------------------------------------

TEST(Statistics, SlotLoadMeanMatchesTheory) {
  // Theorem 6.2's analysis: the expected number of messages in any slot
  // within the window is at most m/(1+eps).  Measure it.
  util::Xoshiro256 rng(1);
  const std::uint32_t p = 256, m = 64;
  const double eps = 0.5;
  const auto rel = sched::balanced_relation(p, 64, rng);
  const std::uint64_t n = rel.total_flits();
  const auto window = static_cast<std::uint64_t>(
      std::ceil((1 + eps) * double(n) / m));

  util::Accumulator loads;
  for (int trial = 0; trial < 10; ++trial) {
    const auto schedule = sched::unbalanced_send_schedule(rel, m, eps, n, rng);
    const auto occupancy = sched::slot_occupancy(rel, schedule);
    for (std::uint64_t t = 0; t < window && t < occupancy.size(); ++t) {
      loads.add(static_cast<double>(occupancy[t]));
    }
  }
  const double expected = static_cast<double>(m) / (1 + eps);
  EXPECT_NEAR(loads.mean(), expected, expected * 0.1);
}

TEST(Statistics, OverloadFrequencyBelowChernoffBound) {
  // The per-slot overload probability must sit below
  // exp(-eps^2 m / 3) (the bound is loose; the empirical rate should be
  // comfortably under it).
  util::Xoshiro256 rng(2);
  const std::uint32_t p = 512, m = 64;
  const double eps = 0.5;
  const auto rel = sched::balanced_relation(p, 32, rng);
  const std::uint64_t n = rel.total_flits();

  std::uint64_t overloaded_slots = 0, total_slots = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto schedule = sched::unbalanced_send_schedule(rel, m, eps, n, rng);
    for (const std::uint64_t m_t : sched::slot_occupancy(rel, schedule)) {
      overloaded_slots += (m_t > m);
      ++total_slots;
    }
  }
  const double empirical =
      static_cast<double>(overloaded_slots) / static_cast<double>(total_slots);
  EXPECT_LE(empirical, util::chernoff_upper_tail(double(m) / (1 + eps), eps));
}

TEST(Statistics, OverloadRateFallsWithEps) {
  util::Xoshiro256 rng(3);
  const std::uint32_t p = 512, m = 32;
  const auto rel = sched::balanced_relation(p, 32, rng);
  const std::uint64_t n = rel.total_flits();
  std::vector<double> rates;
  for (double eps : {0.1, 0.5, 1.0}) {
    std::uint64_t over = 0, total = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const auto schedule = sched::unbalanced_send_schedule(rel, m, eps, n, rng);
      for (const std::uint64_t m_t : sched::slot_occupancy(rel, schedule)) {
        over += (m_t > m);
        ++total;
      }
    }
    rates.push_back(double(over) / double(total));
  }
  EXPECT_GE(rates[0], rates[1]);
  EXPECT_GE(rates[1], rates[2]);
}

TEST(Statistics, OccupancyHistogramConcentrates) {
  util::Xoshiro256 rng(4);
  const std::uint32_t p = 512, m = 64;
  const auto rel = sched::balanced_relation(p, 64, rng);
  const auto schedule =
      sched::unbalanced_send_schedule(rel, m, 0.5, rel.total_flits(), rng);
  util::Histogram hist(0, 2.0 * m, 16);
  for (const std::uint64_t m_t : sched::slot_occupancy(rel, schedule)) {
    hist.add(static_cast<double>(m_t));
  }
  // Mass concentrates in the bucket band around m/(1+eps) ~ 42.
  double near = 0;
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    if (hist.bucket_lo(b) >= 24 && hist.bucket_hi(b) <= 64) near += hist.count(b);
  }
  EXPECT_GE(near / hist.total(), 0.9);
}

TEST(Statistics, GranularFailureIndependentOfN) {
  // Theorem 6.4's point, measured: at fixed p and m, scaling n 8x does
  // not increase the overload frequency of Granular-Send.
  util::Xoshiro256 rng(5);
  const std::uint32_t p = 128, m = 16;
  auto overload_rate = [&](std::uint64_t per_proc) {
    const auto rel =
        sched::balanced_relation(p, static_cast<std::uint32_t>(per_proc), rng);
    int over = 0;
    for (int t = 0; t < 15; ++t) {
      const auto s =
          sched::granular_send_schedule(rel, m, 3.0, rel.total_flits(), rng);
      over += !sched::evaluate_schedule(rel, s, m, Penalty::kExponential, 1)
                   .within_limit;
    }
    return over;
  };
  const int small_n = overload_rate(32);
  const int large_n = overload_rate(256);
  EXPECT_LE(large_n, small_n + 2);
}

// ---- algorithm sweeps ----------------------------------------------------------

struct BroadcastCase {
  std::uint32_t p;
  double g;
  double L;
};

class BroadcastSweep : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastSweep, AllVariantsCorrect) {
  const auto c = GetParam();
  const auto m = std::max(1u, static_cast<std::uint32_t>(c.p / c.g));
  const auto prm = params(c.p, c.g, m, c.L);
  const core::BspG bsp_g(prm);
  const core::BspM bsp_m(prm);
  const core::QsmG qsm_g(prm);
  const core::QsmM qsm_m(prm);

  const auto arity = std::max(1u, static_cast<std::uint32_t>(c.L / c.g));
  EXPECT_TRUE(algos::broadcast_bsp_tree(bsp_g, arity, 42).correct);
  EXPECT_TRUE(algos::broadcast_ternary_bsp(bsp_g, true).correct);
  EXPECT_TRUE(algos::broadcast_ternary_bsp(bsp_g, false).correct);
  EXPECT_TRUE(
      algos::broadcast_bsp_m(bsp_m, m, static_cast<std::uint32_t>(c.L), 42)
          .correct);
  EXPECT_TRUE(algos::broadcast_qsm_g(
                  qsm_g, std::max(2u, static_cast<std::uint32_t>(c.g)), 42)
                  .correct);
  EXPECT_TRUE(algos::broadcast_qsm_m(qsm_m, m, 42).correct);
}

INSTANTIATE_TEST_SUITE_P(Grid, BroadcastSweep,
                         ::testing::Values(BroadcastCase{2, 1, 1},
                                           BroadcastCase{5, 2, 4},
                                           BroadcastCase{64, 4, 8},
                                           BroadcastCase{100, 8, 16},
                                           BroadcastCase{1000, 8, 2},
                                           BroadcastCase{4096, 32, 64}));

struct ReduceCase {
  std::uint32_t p;
  std::uint32_t collectors;
  std::uint32_t arity;
};

class ReduceSweep : public ::testing::TestWithParam<ReduceCase> {};

TEST_P(ReduceSweep, SumAndParityCorrectBothFamilies) {
  const auto c = GetParam();
  util::Xoshiro256 rng(c.p + c.arity);
  std::vector<engine::Word> inputs(c.p);
  for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(1 << 16));
  const auto prm = params(c.p, 4, std::max(1u, c.p / 8), 4);
  const core::BspM bsp(prm);
  const core::QsmM qsm(prm);
  for (auto op : {algos::ReduceOp::kSum, algos::ReduceOp::kXor}) {
    EXPECT_TRUE(algos::reduce_bsp(bsp, inputs, c.collectors, c.arity, op).correct);
    EXPECT_TRUE(
        algos::reduce_qsm(qsm, inputs, c.collectors, c.arity, prm.m, op).correct);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ReduceSweep,
                         ::testing::Values(ReduceCase{4, 2, 2},
                                           ReduceCase{64, 8, 2},
                                           ReduceCase{64, 8, 4},
                                           ReduceCase{100, 10, 3},
                                           ReduceCase{256, 64, 8},
                                           ReduceCase{256, 1, 2}));

TEST(GossipSweep, CorrectAcrossSizes) {
  for (std::uint32_t p : {2u, 9u, 33u, 128u}) {
    util::Xoshiro256 rng(p);
    std::vector<engine::Word> values(p);
    for (auto& v : values) v = static_cast<engine::Word>(rng.below(1000));
    const core::BspM model(params(p, 2, std::max(1u, p / 4), 2));
    EXPECT_TRUE(algos::gossip_bsp(model, values, std::max(1u, p / 4)).correct)
        << "p=" << p;
  }
}

TEST(ListRankSweep, PathologicalShapes) {
  const core::QsmM model(params(256, 8, 32, 1));
  // Identity-ordered list (succ[i] = i+1): maximally "sorted".
  std::vector<std::uint32_t> ordered(256);
  for (std::uint32_t i = 0; i < 256; ++i) ordered[i] = i + 1;
  EXPECT_TRUE(algos::list_rank_qsm(model, ordered, 32, 32).correct);
  // Reversed list.
  std::vector<std::uint32_t> reversed(256);
  reversed[0] = 256;
  for (std::uint32_t i = 1; i < 256; ++i) reversed[i] = i - 1;
  EXPECT_TRUE(algos::list_rank_qsm(model, reversed, 32, 32).correct);
}

TEST(ListRankSweep, ManySeedsAllSucceed) {
  const core::QsmM model(params(128, 4, 32, 1));
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto succ = algos::random_list(128, seed);
    engine::MachineOptions opts;
    opts.seed = seed;
    EXPECT_TRUE(algos::list_rank_qsm(model, succ, 32, 32, opts).correct)
        << "seed=" << seed;
  }
}

}  // namespace
