// Unit tests for the SPMD superstep engine: message delivery, slot
// accounting, shared-memory semantics, contention, validation, halting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/model/models.hpp"
#include "engine/error.hpp"
#include "engine/machine.hpp"

namespace {

using namespace pbw;
using engine::Machine;
using engine::MachineOptions;
using engine::ProcContext;
using engine::SuperstepProgram;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

/// Ring program: proc i sends its id to (i+1) mod p; checks receipt.
class RingProgram : public SuperstepProgram {
 public:
  explicit RingProgram(std::uint32_t p) : got_(p, -1) {}
  bool step(ProcContext& ctx) override {
    if (ctx.superstep() == 0) {
      ctx.send((ctx.id() + 1) % ctx.p(), ctx.id());
      return true;
    }
    for (const auto& m : ctx.inbox()) got_[ctx.id()] = m.payload;
    return false;
  }
  std::vector<engine::Word> got_;
};

TEST(Engine, RingDelivery) {
  const core::BspG model(params(8, 2, 4, 1));
  Machine machine(model);
  RingProgram prog(8);
  const auto result = machine.run(prog);
  EXPECT_EQ(result.supersteps, 2u);
  EXPECT_EQ(result.total_messages, 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(prog.got_[i], static_cast<engine::Word>((i + 7) % 8));
  }
}

TEST(Engine, BspGCostIsGTimesH) {
  // 8 procs each send 3 messages; g=2, L=1 -> superstep cost = g*h = 6,
  // plus the drain superstep at cost L=1.
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      for (int k = 0; k < 3; ++k) ctx.send((ctx.id() + 1) % ctx.p(), k);
      return true;
    }
  } prog;
  const core::BspG model(params(8, 2, 4, 1));
  Machine machine(model);
  const auto result = machine.run(prog);
  EXPECT_DOUBLE_EQ(result.total_time, 6.0 + 1.0);
}

TEST(Engine, AutoSlotsAreBackToBack) {
  // One proc sends 5 unscheduled messages: slots 1..5, one per slot.
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0 || ctx.id() != 0) return false;
      for (int k = 0; k < 5; ++k) ctx.send(1, k);
      return true;
    }
  } prog;
  const core::BspM model(params(4, 1, 2, 1));
  MachineOptions opts;
  opts.trace = true;
  Machine machine(model, opts);
  const auto result = machine.run(prog);
  ASSERT_FALSE(result.trace.empty());
  const auto& counts = result.trace[0].stats.slot_counts;
  ASSERT_EQ(counts.size(), 5u);
  for (auto c : counts) EXPECT_EQ(c, 1u);
}

TEST(Engine, SlotCollisionThrows) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      if (ctx.id() == 0) {
        ctx.send(1, 0, /*slot=*/3);
        ctx.send(1, 1, /*slot=*/3);  // same slot: model contract violation
      }
      return true;
    }
  } prog;
  const core::BspM model(params(4, 1, 2, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, LongMessageOccupiesConsecutiveSlots) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      if (ctx.id() == 0) ctx.send(1, 7, /*slot=*/2, /*length=*/4);
      return true;
    }
  } prog;
  const core::BspM model(params(4, 1, 2, 1));
  MachineOptions opts;
  opts.trace = true;
  Machine machine(model, opts);
  const auto result = machine.run(prog);
  const auto& counts = result.trace[0].stats.slot_counts;
  ASSERT_EQ(counts.size(), 5u);  // slots 1..5; occupied 2..5
  EXPECT_EQ(counts[0], 0u);
  for (int t = 1; t < 5; ++t) EXPECT_EQ(counts[t], 1u);
  EXPECT_EQ(result.total_flits, 4u);
  EXPECT_EQ(result.total_messages, 1u);
}

TEST(Engine, FlitOverlapWithinProcThrows) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      if (ctx.id() == 0) {
        ctx.send(1, 0, /*slot=*/1, /*length=*/3);
        ctx.send(2, 1, /*slot=*/2, /*length=*/1);  // inside previous message
      }
      return true;
    }
  } prog;
  const core::BspM model(params(4, 1, 2, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, SharedMemoryReadAfterWrite) {
  // Superstep 0: proc 0 writes 42 to cell 5.
  // Superstep 1: all procs read cell 5.  Superstep 2: check value.
  class P : public SuperstepProgram {
   public:
    explicit P(std::uint32_t p) : got_(p, -1) {}
    void setup(Machine& m) override { m.resize_shared(16); }
    bool step(ProcContext& ctx) override {
      switch (ctx.superstep()) {
        case 0:
          if (ctx.id() == 0) ctx.write(5, 42);
          return true;
        case 1:
          ctx.read(5);
          return true;
        default:
          got_[ctx.id()] = ctx.reads()[0];
          return false;
      }
    }
    std::vector<engine::Word> got_;
  } prog(4);
  const core::QsmM model(params(4, 1, 2, 1));
  Machine machine(model);
  machine.run(prog);
  for (auto v : prog.got_) EXPECT_EQ(v, 42);
}

TEST(Engine, ReadsSeePreSuperstepState) {
  // A read and a write to *different* cells in the same superstep: the
  // read must observe the value from before the superstep.
  class P : public SuperstepProgram {
   public:
    void setup(Machine& m) override {
      m.resize_shared(4);
      m.poke_shared(0, 7);
    }
    bool step(ProcContext& ctx) override {
      switch (ctx.superstep()) {
        case 0:
          if (ctx.id() == 0) {
            ctx.read(0);
            ctx.write(1, 9);
          }
          return true;
        case 1:
          if (ctx.id() == 0) seen_ = ctx.reads()[0];
          return false;
        default:
          return false;
      }
    }
    engine::Word seen_ = -1;
  } prog;
  const core::QsmM model(params(2, 1, 1, 1));
  Machine machine(model);
  machine.run(prog);
  EXPECT_EQ(prog.seen_, 7);
}

TEST(Engine, QsmRaceDetected) {
  class P : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(4); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      if (ctx.id() == 0) ctx.read(2);
      if (ctx.id() == 1) ctx.write(2, 1);
      return true;
    }
  } prog;
  const core::QsmM model(params(2, 1, 1, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, ConcurrentWriteArbitraryRuleIsDeterministic) {
  // All procs write their id to cell 0; the highest-ranked writer wins.
  class P : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(1); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.write(0, ctx.id());
      return true;
    }
  } prog;
  const core::QsmM model(params(8, 1, 4, 1));
  Machine machine(model);
  machine.run(prog);
  EXPECT_EQ(machine.shared_at(0), 7);
}

TEST(Engine, KappaCountsMaxContention) {
  // 6 procs read cell 0, 2 procs read cell 1 -> kappa = 6.
  class P : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(2); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.read(ctx.id() < 6 ? 0 : 1);
      return true;
    }
  } prog;
  const core::QsmM model(params(8, 1, 8, 1));
  MachineOptions opts;
  opts.trace = true;
  Machine machine(model, opts);
  const auto result = machine.run(prog);
  EXPECT_EQ(result.trace[0].stats.kappa, 6u);
}

TEST(Engine, OutOfRangeAddressThrows) {
  class P : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(2); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.read(99);
      return true;
    }
  } prog;
  const core::QsmM model(params(2, 1, 1, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, DestinationOutOfRangeThrows) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      ctx.send(ctx.p(), 0);  // invalid
      return false;
    }
  } prog;
  const core::BspG model(params(2, 1, 1, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, SuperstepLimitEnforced) {
  class Forever : public SuperstepProgram {
   public:
    bool step(ProcContext&) override { return true; }
  } prog;
  const core::BspG model(params(2, 1, 1, 1));
  MachineOptions opts;
  opts.max_supersteps = 10;
  Machine machine(model, opts);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, WorkChargeDominatesWhenLarge) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.charge(123.0);
      return true;
    }
  } prog;
  const core::BspG model(params(4, 2, 2, 5));
  Machine machine(model);
  const auto result = machine.run(prog);
  // Superstep 0 costs max(w=123, L=5) = 123; drain superstep costs L=5.
  EXPECT_DOUBLE_EQ(result.total_time, 128.0);
}

TEST(Engine, DeterministicAcrossThreadCounts) {
  // The same randomized program must produce identical results with 1 and
  // 4 host threads (per-(proc, superstep) RNG streams).
  class P : public SuperstepProgram {
   public:
    explicit P(std::uint32_t p) : sums_(p, 0) {}
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() >= 3) return false;
      const auto dst = static_cast<engine::ProcId>(ctx.rng().below(ctx.p()));
      ctx.send(dst, static_cast<engine::Word>(ctx.rng().below(1000)));
      for (const auto& m : ctx.inbox()) sums_[ctx.id()] += m.payload;
      return true;
    }
    std::vector<engine::Word> sums_;
  };

  const core::BspM model(params(16, 1, 4, 1));
  MachineOptions seq;
  seq.threads = 1;
  MachineOptions par;
  par.threads = 4;
  P prog1(16), prog2(16);
  Machine m1(model, seq), m2(model, par);
  const auto r1 = m1.run(prog1);
  const auto r2 = m2.run(prog2);
  EXPECT_DOUBLE_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(prog1.sums_, prog2.sums_);
}

TEST(Engine, InboxOrderedBySourceThenSlot) {
  class P : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() == 0) {
        if (ctx.id() == 1) {
          ctx.send(0, 20, /*slot=*/5);
          ctx.send(0, 10, /*slot=*/1);
        }
        if (ctx.id() == 2) ctx.send(0, 30, /*slot=*/2);
        return true;
      }
      if (ctx.id() == 0) {
        for (const auto& m : ctx.inbox()) order_.push_back(m.payload);
      }
      return false;
    }
    std::vector<engine::Word> order_;
  } prog;
  const core::BspM model(params(4, 1, 4, 1));
  Machine machine(model);
  machine.run(prog);
  ASSERT_EQ(prog.order_.size(), 3u);
  EXPECT_EQ(prog.order_[0], 10);  // src 1, slot 1
  EXPECT_EQ(prog.order_[1], 20);  // src 1, slot 5
  EXPECT_EQ(prog.order_[2], 30);  // src 2
}

}  // namespace
