// Tests for the second wave of Section 4 algorithms: deterministic
// columnsort and parallel prefix sums.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/columnsort.hpp"
#include "algos/gossip.hpp"
#include "algos/prefix.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "engine/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

std::vector<engine::Word> random_keys(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(1 << 20)) - (1 << 19);
  return v;
}

// ---- columnsort ---------------------------------------------------------

TEST(Columnsort, SortsRandomKeys) {
  const core::BspM model(params(16, 4, 4, 2));
  // s = 4 columns, r = 64 >= 2*9 = 18.
  const auto r = algos::columnsort_bsp(model, random_keys(256, 1), 4, 4);
  EXPECT_TRUE(r.correct);
}

TEST(Columnsort, SortsWithDuplicatesAndSortedInputs) {
  const core::BspM model(params(16, 4, 4, 2));
  std::vector<engine::Word> dup(256, 5);
  dup[17] = 1;
  dup[200] = 9;
  EXPECT_TRUE(algos::columnsort_bsp(model, dup, 4, 4).correct);

  std::vector<engine::Word> asc(256);
  std::iota(asc.begin(), asc.end(), -100);
  EXPECT_TRUE(algos::columnsort_bsp(model, asc, 4, 4).correct);

  std::vector<engine::Word> desc(asc.rbegin(), asc.rend());
  EXPECT_TRUE(algos::columnsort_bsp(model, desc, 4, 4).correct);
}

TEST(Columnsort, BoundaryConditionEnforced) {
  const core::BspM model(params(16, 4, 4, 2));
  // s = 8, r = 32 < 2*49 = 98: violates r >= 2(s-1)^2.
  EXPECT_THROW((void)algos::columnsort_bsp(model, random_keys(256, 2), 8, 4),
               engine::SimulationError);
  // s does not divide n.
  EXPECT_THROW((void)algos::columnsort_bsp(model, random_keys(255, 3), 4, 4),
               engine::SimulationError);
  // needs s+1 processors.
  const core::BspM tiny(params(4, 1, 2, 1));
  EXPECT_THROW((void)algos::columnsort_bsp(tiny, random_keys(256, 4), 4, 2),
               engine::SimulationError);
}

TEST(Columnsort, MaxColumnsHelper) {
  // n = 1024: s = 8 needs r = 128 >= 2*49 = 98 (ok); s = 9 needs
  // r = 113.8 -> 1024/9 = 113 < 2*64 = 128 (fails).
  EXPECT_EQ(algos::columnsort_max_columns(1024, 64), 8u);
  EXPECT_GE(algos::columnsort_max_columns(1u << 20, 64), 32u);
  EXPECT_EQ(algos::columnsort_max_columns(16, 2), 2u);  // p caps s+1
}

TEST(Columnsort, DeterministicSameSeedSameCost) {
  const core::BspM model(params(16, 4, 4, 2));
  const auto keys = random_keys(512, 5);
  const auto a = algos::columnsort_bsp(model, keys, 4, 4);
  const auto b = algos::columnsort_bsp(model, keys, 4, 4);
  EXPECT_TRUE(a.correct);
  EXPECT_DOUBLE_EQ(a.time, b.time);  // fully deterministic algorithm
}

TEST(Columnsort, LargerInstanceOnBothModels) {
  // g must exceed lg(n/s) for communication (g*r) to dominate the local
  // sort work ((n/s) lg(n/s)) on the locally-limited model.
  const std::uint32_t p = 32, m = 2;
  const auto keys = random_keys(4096, 6);
  const core::BspM global(params(p, 16, m, 4));
  const core::BspG local(params(p, 16, m, 4));
  // Largest power-of-two column count within the columnsort condition
  // (powers of two always divide n = 4096).
  std::uint32_t s = 2;
  while (2 * s <= algos::columnsort_max_columns(keys.size(), p)) s *= 2;
  ASSERT_EQ(keys.size() % s, 0u);
  const auto rg = algos::columnsort_bsp(global, keys, s, m);
  const auto rl = algos::columnsort_bsp(local, keys, s, m);
  EXPECT_TRUE(rg.correct);
  EXPECT_TRUE(rl.correct);
  EXPECT_GT(rl.time, rg.time);  // the permutations cost g x more locally
}

// ---- prefix sums ---------------------------------------------------------

TEST(Prefix, SmallHandChecked) {
  const core::BspM model(params(4, 1, 2, 2));
  const auto r = algos::prefix_sums_bsp(model, {1, 2, 3, 4}, 2, 2);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.prefixes, (std::vector<engine::Word>{0, 1, 3, 6}));
  EXPECT_EQ(r.total, 10);
}

TEST(Prefix, SingleCollector) {
  const core::BspM model(params(8, 8, 1, 2));
  const auto r = algos::prefix_sums_bsp(model, {5, 5, 5, 5, 5, 5, 5, 5}, 1, 2);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.total, 40);
}

TEST(Prefix, SingleProcessor) {
  const core::BspM model(params(1, 1, 1, 1));
  const auto r = algos::prefix_sums_bsp(model, {7}, 1, 2);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.prefixes[0], 0);
  EXPECT_EQ(r.total, 7);
}

TEST(Prefix, RandomInputsAcrossShapes) {
  util::Xoshiro256 rng(9);
  for (std::uint32_t p : {16u, 64u, 100u, 256u}) {
    for (std::uint32_t collectors : {2u, 8u, 16u}) {
      for (std::uint32_t arity : {2u, 4u, 8u}) {
        std::vector<engine::Word> inputs(p);
        for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(100));
        const core::BspM model(params(p, 4, std::min(collectors, p), 4));
        const auto r =
            algos::prefix_sums_bsp(model, inputs, collectors, arity);
        EXPECT_TRUE(r.correct)
            << "p=" << p << " c=" << collectors << " a=" << arity;
      }
    }
  }
}

TEST(Prefix, TimeWithinBoundShape) {
  const std::uint32_t p = 1024, m = 32;
  const double L = 4;
  std::vector<engine::Word> inputs(p, 1);
  const core::BspM model(params(p, p / m, m, L));
  const auto r = algos::prefix_sums_bsp(model, inputs, m, static_cast<std::uint32_t>(L));
  ASSERT_TRUE(r.correct);
  EXPECT_LE(r.time, 8 * core::bounds::count_n_time(p, m, L));
}

// ---- gossip ---------------------------------------------------------------

TEST(Gossip, EveryoneLearnsEverything) {
  const core::BspM model(params(32, 4, 8, 2));
  const auto r = algos::gossip_bsp(model, random_keys(32, 20), 8);
  EXPECT_TRUE(r.correct);
}

TEST(Gossip, CostMatchesMaxOfHAndBandwidth) {
  const std::uint32_t p = 64;
  for (std::uint32_t m : {4u, 64u}) {
    const core::BspM model(params(p, double(p) / m, m, 2));
    const auto r = algos::gossip_bsp(model, random_keys(p, 21), m);
    ASSERT_TRUE(r.correct);
    const double expected =
        std::max({double(p - 1), double(p) * (p - 1) / m, 2.0}) + 2.0;
    EXPECT_NEAR(r.time, expected, expected * 0.05) << "m=" << m;
  }
}

TEST(Gossip, BspGPaysGap) {
  const std::uint32_t p = 64, m = 8;
  const double g = double(p) / m;
  const core::BspG local(params(p, g, m, 2));
  const core::BspM global(params(p, g, m, 2));
  const auto rl = algos::gossip_bsp(local, random_keys(p, 22), m);
  const auto rg = algos::gossip_bsp(global, random_keys(p, 22), m);
  ASSERT_TRUE(rl.correct && rg.correct);
  // Gossip is balanced: g*h = g(p-1) vs max(p-1, p(p-1)/m) = g(p-1) —
  // the models agree (the no-imbalance boundary case).
  EXPECT_NEAR(rl.time, rg.time, rg.time * 0.1);
}

TEST(Gossip, SingleProcessor) {
  const core::BspM model(params(1, 1, 1, 1));
  EXPECT_TRUE(algos::gossip_bsp(model, {7}, 1).correct);
}

TEST(Gossip, RejectsSizeMismatch) {
  const core::BspM model(params(8, 2, 4, 1));
  EXPECT_THROW((void)algos::gossip_bsp(model, {1, 2}, 4), engine::SimulationError);
}

TEST(QsmPrefix, SmallHandChecked) {
  const core::QsmM model(params(4, 1, 2, 1));
  const auto r = algos::prefix_sums_qsm(model, {1, 2, 3, 4}, 2, 2);
  ASSERT_TRUE(r.correct);
  EXPECT_EQ(r.prefixes, (std::vector<engine::Word>{0, 1, 3, 6}));
  EXPECT_EQ(r.total, 10);
}

TEST(QsmPrefix, RandomAcrossShapes) {
  util::Xoshiro256 rng(31);
  for (std::uint32_t p : {8u, 64u, 100u, 256u}) {
    for (std::uint32_t collectors : {1u, 4u, 16u, 64u}) {
      std::vector<engine::Word> inputs(p);
      for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(50));
      const core::QsmM model(params(p, 4, std::max(1u, p / 8), 1));
      const auto r = algos::prefix_sums_qsm(model, inputs, collectors,
                                            std::max(1u, p / 8));
      EXPECT_TRUE(r.correct) << "p=" << p << " c=" << collectors;
    }
  }
}

TEST(QsmPrefix, TimeWithinBoundShape) {
  const std::uint32_t p = 1024, m = 32;
  std::vector<engine::Word> inputs(p, 2);
  const core::QsmM model(params(p, p / m, m, 1));
  const auto r = algos::prefix_sums_qsm(model, inputs, m, m);
  ASSERT_TRUE(r.correct);
  // O(p/m + lg m): generous constant covers the 4 lg m tree supersteps.
  EXPECT_LE(r.time, 8 * (double(p) / m + core::bounds::lg(m)));
}

TEST(QsmPrefix, MatchesBspPrefix) {
  util::Xoshiro256 rng(32);
  std::vector<engine::Word> inputs(128);
  for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(9));
  const core::QsmM qsm(params(128, 8, 16, 2));
  const core::BspM bsp(params(128, 8, 16, 2));
  const auto a = algos::prefix_sums_qsm(qsm, inputs, 16, 16);
  const auto b = algos::prefix_sums_bsp(bsp, inputs, 16, 2);
  ASSERT_TRUE(a.correct && b.correct);
  EXPECT_EQ(a.prefixes, b.prefixes);
  EXPECT_EQ(a.total, b.total);
}

TEST(Prefix, NonPowerOfTwoCollectorsAndArity) {
  util::Xoshiro256 rng(33);
  std::vector<engine::Word> inputs(100);
  for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(20));
  const core::BspM bsp(params(100, 10, 10, 3));
  EXPECT_TRUE(algos::prefix_sums_bsp(bsp, inputs, 10, 3).correct);
  EXPECT_TRUE(algos::prefix_sums_bsp(bsp, inputs, 7, 5).correct);
  const core::QsmM qsm(params(100, 10, 10, 3));
  EXPECT_TRUE(algos::prefix_sums_qsm(qsm, inputs, 10, 10).correct);
  EXPECT_TRUE(algos::prefix_sums_qsm(qsm, inputs, 7, 10).correct);
}

TEST(Prefix, RejectsSizeMismatch) {
  const core::BspM model(params(8, 2, 4, 1));
  EXPECT_THROW(algos::prefix_sums_bsp(model, {1, 2}, 2, 2),
               engine::SimulationError);
}

}  // namespace
