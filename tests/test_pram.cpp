// Tests for the PRAM substrate (Section 4.1 / Section 5): the simulator's
// mode semantics, the O(h) CRCW h-relation realization, Leader
// Recognition in ER and CR modes, and the Theorem 5.1 CR-step simulation.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "pram/cr_sim.hpp"
#include "pram/h_relation.hpp"
#include "pram/leader.hpp"
#include "pram/pram.hpp"
#include "sched/workloads.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;
using pram::Mode;
using pram::PramContext;
using pram::PramMachine;
using pram::PramProgram;

TEST(Pram, ReadsSeeStartOfStepState) {
  class P final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() == 0) {
        if (ctx.id() == 0) seen_ = ctx.read(0);
        if (ctx.id() == 1) ctx.write(0, 42);
        return true;
      }
      if (ctx.id() == 0) after_ = ctx.read(0);
      return false;
    }
    engine::Word seen_ = -1, after_ = -1;
  } prog;
  PramMachine machine(2, 1, {}, Mode::kCRCW);
  machine.poke(0, 7);
  machine.run(prog);
  EXPECT_EQ(prog.seen_, 7);
  EXPECT_EQ(prog.after_, 42);
}

TEST(Pram, ArbitraryWriteHighestWins) {
  class P final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      ctx.write(0, ctx.id());
      return true;
    }
  } prog;
  PramMachine machine(8, 1, {}, Mode::kCRCW);
  machine.run(prog);
  EXPECT_EQ(machine.cell(0), 7);
}

TEST(Pram, ErewViolationThrows) {
  class P final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      (void)ctx.read(0);  // every processor: concurrent read
      return true;
    }
  } prog;
  PramMachine machine(4, 1, {}, Mode::kEREW);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Pram, QrqwChargesContention) {
  class P final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      (void)ctx.read(0);
      return true;
    }
  } prog;
  PramMachine machine(6, 1, {}, Mode::kQRQW);
  const auto run = machine.run(prog);
  // Step 0 costs kappa = 6; the final all-idle step costs 1.
  EXPECT_DOUBLE_EQ(run.time, 7.0);
  EXPECT_EQ(run.max_contention, 6u);
}

TEST(Pram, RomIsFreeAndConcurrent) {
  class P final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      sum_ += ctx.rom(0);
      return true;
    }
    engine::Word sum_ = 0;
  } prog;
  PramMachine machine(4, 1, {5}, Mode::kEREW);  // all read ROM[0]: legal
  EXPECT_NO_THROW(machine.run(prog));
  EXPECT_EQ(prog.sum_, 20);
}

// ---- h-relation realization -------------------------------------------------

TEST(HRelation, DeliversBalanced) {
  util::Xoshiro256 rng(1);
  const auto rel = sched::balanced_relation(16, 4, rng);
  const auto result = pram::realize_h_relation_crcw(rel);
  EXPECT_TRUE(result.delivered);
}

TEST(HRelation, RoundsBoundedByYbar) {
  util::Xoshiro256 rng(2);
  for (double hot : {0.0, 0.5, 1.0}) {
    const auto rel = sched::point_skew_relation(32, 256, hot, rng);
    const auto result = pram::realize_h_relation_crcw(rel);
    EXPECT_TRUE(result.delivered) << "hot=" << hot;
    const std::uint64_t h = std::max(rel.max_sent(), rel.max_received());
    EXPECT_LE(result.rounds, std::max<std::uint64_t>(rel.max_received(), 1) + 1)
        << "hot=" << hot;
    EXPECT_LE(result.steps, 3 * (h + 2)) << "hot=" << hot;
  }
}

TEST(HRelation, AllToOne) {
  sched::Relation rel(8);
  for (engine::ProcId src = 1; src < 8; ++src) rel.add(src, 0);
  const auto result = pram::realize_h_relation_crcw(rel);
  EXPECT_TRUE(result.delivered);
  EXPECT_LE(result.rounds, 8u);
}

TEST(HRelation, EmptyRelation) {
  sched::Relation rel(4);
  const auto result = pram::realize_h_relation_crcw(rel);
  EXPECT_TRUE(result.delivered);
  EXPECT_LE(result.steps, 3u);
}

// ---- leader recognition ------------------------------------------------------

TEST(Leader, ConcurrentReadIsConstantSteps) {
  for (std::uint32_t leader : {0u, 1u, 255u}) {
    const auto r = pram::leader_concurrent_read(256, 16, leader);
    EXPECT_TRUE(r.correct) << "leader=" << leader;
    EXPECT_LE(r.steps, 3u);
  }
}

TEST(Leader, ExclusiveReadCorrectAcrossM) {
  for (std::uint32_t m : {1u, 4u, 16u, 64u}) {
    const auto r = pram::leader_exclusive_read(256, m, 137);
    EXPECT_TRUE(r.correct) << "m=" << m;
  }
}

TEST(Leader, ExclusiveReadTimeIsThetaPOverM) {
  const std::uint32_t p = 1024;
  const auto r16 = pram::leader_exclusive_read(p, 16, 3);
  const auto r64 = pram::leader_exclusive_read(p, 64, 3);
  ASSERT_TRUE(r16.correct && r64.correct);
  // Doubling m four-fold roughly quarters the time: 2(p/m) dominates.
  EXPECT_GT(static_cast<double>(r16.steps) / r64.steps, 2.0);
  EXPECT_GE(r16.steps, 2 * (p / 16));
}

TEST(Leader, MeasuredGapExceedsLowerBoundFormula) {
  const std::uint32_t p = 4096, m = 64, w = 12;  // w = lg p
  const auto er = pram::leader_exclusive_read(p, m, 99);
  const auto cr = pram::leader_concurrent_read(p, m, 99);
  ASSERT_TRUE(er.correct && cr.correct);
  const double measured_gap = er.time / cr.time;
  EXPECT_GE(measured_gap, core::bounds::leader_qsm_m_lower(p, m, w));
  EXPECT_GE(measured_gap, core::bounds::er_cr_separation(p, m) / 4);
}

// ---- Theorem 5.1 CR-step simulation -----------------------------------------

core::ModelParams qparams(std::uint32_t p, std::uint32_t m) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = 1;
  return prm;
}

std::vector<engine::Word> make_memory(std::uint32_t m) {
  std::vector<engine::Word> mem(m);
  for (std::uint32_t a = 0; a < m; ++a) mem[a] = 1000 + a;
  return mem;
}

TEST(CrSim, AllReadSameCell) {
  const std::uint32_t p = 256, m = 8;
  const core::QsmM model(qparams(p, m));
  const std::vector<std::uint32_t> addr(p, 3);
  const auto r = pram::simulate_cr_step(model, make_memory(m), addr, m);
  EXPECT_TRUE(r.correct);
  // One stripe leader fetches cell 3; everyone else hits the C shortcut.
  EXPECT_LE(r.direct_reads, 1u);
}

TEST(CrSim, AllDistinctResidues) {
  const std::uint32_t p = 256, m = 8;
  const core::QsmM model(qparams(p, m));
  std::vector<std::uint32_t> addr(p);
  for (std::uint32_t i = 0; i < p; ++i) addr[i] = i % m;
  const auto r = pram::simulate_cr_step(model, make_memory(m), addr, m);
  EXPECT_TRUE(r.correct);
}

TEST(CrSim, RandomAddresses) {
  const std::uint32_t p = 512, m = 16;
  const core::QsmM model(qparams(p, m));
  util::Xoshiro256 rng(11);
  std::vector<std::uint32_t> addr(p);
  for (auto& a : addr) a = static_cast<std::uint32_t>(rng.below(m));
  const auto r = pram::simulate_cr_step(model, make_memory(m), addr, m);
  EXPECT_TRUE(r.correct);
}

TEST(CrSim, TimeIsOrderPOverM) {
  const std::uint32_t p = 1024, m = 16;  // m^2 < p
  const core::QsmM model(qparams(p, m));
  util::Xoshiro256 rng(12);
  std::vector<std::uint32_t> addr(p);
  for (auto& a : addr) a = static_cast<std::uint32_t>(rng.below(m));
  const auto r = pram::simulate_cr_step(model, make_memory(m), addr, m);
  ASSERT_TRUE(r.correct);
  EXPECT_LE(r.time, 12 * core::bounds::cr_step_sim_qsm_m(p, m));
}

TEST(CrSim, NegativeMemoryValues) {
  const std::uint32_t p = 64, m = 4;
  const core::QsmM model(qparams(p, m));
  std::vector<engine::Word> mem{-5, -1, 0, 7};
  std::vector<std::uint32_t> addr(p);
  for (std::uint32_t i = 0; i < p; ++i) addr[i] = i % m;
  const auto r = pram::simulate_cr_step(model, mem, addr, m);
  EXPECT_TRUE(r.correct);
}

TEST(CrSim, RejectsBadInput) {
  const core::QsmM model(qparams(64, 4));
  EXPECT_THROW(
      (void)pram::simulate_cr_step(model, make_memory(4), std::vector<std::uint32_t>(64, 9), 4),
      engine::SimulationError);
}

}  // namespace
