// Telemetry subsystem tests: the span profiler (nesting, aggregation,
// gating, the bounded event buffer), histogram percentile estimation, the
// Prometheus text renderer (golden output — the exposition format is an
// interchange contract), the sliding-window rate estimator and its ETA
// monotonicity contract, the stall watchdog driven with a fake in-flight
// board, the campaign /status document schema, cooperative shutdown
// signals, and the embedded HTTP endpoint exercised end-to-end over a
// real loopback socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "campaign/status.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/context.hpp"
#include "obs/telemetry/http_server.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/telemetry/rate.hpp"
#include "obs/telemetry/signals.hpp"
#include "obs/telemetry/span.hpp"
#include "obs/telemetry/watchdog.hpp"
#include "util/json.hpp"

namespace {

using namespace pbw;

// ---- span profiler ---------------------------------------------------------

TEST(Span, NestingRecordsDepthAndAggregates) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  {
    PBW_SPAN("outer");
    {
      PBW_SPAN("inner");
    }
    {
      PBW_SPAN("inner");
    }
  }
  const auto events = registry.events();
  ASSERT_EQ(events.size(), 3u);
  // Spans close inner-first; all on this thread, so one tid.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_EQ(events[0].tid, events[2].tid);
  // The outer span contains both inner ones.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].dur_ns, events[0].dur_ns + events[1].dur_ns);

  const auto aggregates = registry.aggregates();
  ASSERT_EQ(aggregates.count("inner"), 1u);
  EXPECT_EQ(aggregates.at("inner").count, 2u);
  EXPECT_EQ(aggregates.at("outer").count, 1u);
  EXPECT_GE(aggregates.at("outer").total_ns, aggregates.at("outer").max_ns);
}

TEST(Span, MirrorsIntoMetricsRegistry) {
  obs::SpanRegistry::global().reset();
  auto& metrics = obs::MetricsRegistry::global();
  const std::uint64_t before = metrics.counter("span.phase.count").value();
  {
    PBW_SPAN("phase");
  }
  EXPECT_EQ(metrics.counter("span.phase.count").value(), before + 1);
}

TEST(Span, SiteGateAndGlobalToggleDisableRecording) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  {
    obs::Span gated("gated", false);
    EXPECT_EQ(gated.stop(), 0u);
  }
  registry.set_enabled(false);
  {
    PBW_SPAN("while_disabled");
  }
  registry.set_enabled(true);
  EXPECT_TRUE(registry.events().empty());
  EXPECT_TRUE(registry.aggregates().empty());
}

TEST(Span, StopIsIdempotentAndReturnsDuration) {
  obs::SpanRegistry::global().reset();
  obs::Span span("once");
  const std::uint64_t first = span.stop();
  EXPECT_EQ(span.stop(), 0u);  // already closed
  EXPECT_GE(first, 0u);
  EXPECT_EQ(obs::SpanRegistry::global().aggregates().at("once").count, 1u);
}

TEST(Span, EventBufferBoundedAggregatesStillUpdate) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  const std::size_t extra = 7;
  for (std::size_t i = 0; i < obs::SpanRegistry::kMaxEvents + extra; ++i) {
    registry.record({"flood", 0, 1, 0, 0});
  }
  EXPECT_EQ(registry.events().size(), obs::SpanRegistry::kMaxEvents);
  EXPECT_EQ(registry.dropped(), extra);
  EXPECT_EQ(registry.aggregates().at("flood").count,
            obs::SpanRegistry::kMaxEvents + extra);
  registry.reset();
}

// ---- histogram percentiles -------------------------------------------------

TEST(Percentiles, LinearInterpolationOnUniformData) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);   // min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.5);  // max
}

TEST(Percentiles, ClampedToObservedRangeAndEmptyIsZero) {
  obs::MetricsRegistry registry;
  auto& empty = registry.histogram("none", 0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  // One observation in a single coarse bucket: interpolation alone would
  // report the bucket midpoint; the clamp pins it to the observed value.
  auto& one = registry.histogram("one", 0.0, 10.0, 1);
  one.observe(7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.99), 7.0);
}

TEST(Percentiles, HistogramJsonCarriesPercentileKeys) {
  obs::MetricsRegistry registry;
  auto& h = registry.histogram("lat", 0.0, 10.0, 5);
  h.observe(2.0);
  h.observe(8.0);
  const util::Json j = h.to_json();
  ASSERT_NE(j.get("p50"), nullptr);
  ASSERT_NE(j.get("p95"), nullptr);
  ASSERT_NE(j.get("p99"), nullptr);
  EXPECT_DOUBLE_EQ(j.get("p50")->as_double(), h.quantile(0.5));
  // Deterministic key order: percentiles sit between max and buckets.
  const auto& members = j.members();
  std::vector<std::string> keys;
  keys.reserve(members.size());
  for (const auto& [key, value] : members) keys.push_back(key);
  const std::vector<std::string> expected = {
      "count", "sum", "mean", "min", "max", "p50", "p95", "p99", "buckets"};
  EXPECT_EQ(keys, expected);
}

// ---- Prometheus text exposition --------------------------------------------

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(obs::prometheus_name("campaign.job_seconds"),
            "pbw_campaign_job_seconds");
  EXPECT_EQ(obs::prometheus_name("span.engine.step.total_ns"),
            "pbw_span_engine_step_total_ns");
}

TEST(Prometheus, GoldenRendering) {
  obs::MetricsRegistry registry;
  registry.counter("jobs").add(3);
  registry.gauge("depth").set(2.5);
  auto& h = registry.histogram("lat", 0.0, 10.0, 2);
  h.observe(1.0);
  h.observe(9.0);

  const std::string expected =
      "# TYPE pbw_jobs counter\n"
      "pbw_jobs 3\n"
      "# TYPE pbw_depth gauge\n"
      "pbw_depth 2.5\n"
      "# TYPE pbw_lat histogram\n"
      "pbw_lat_bucket{le=\"5\"} 1\n"
      "pbw_lat_bucket{le=\"10\"} 2\n"
      "pbw_lat_bucket{le=\"+Inf\"} 2\n"
      "pbw_lat_sum 10\n"
      "pbw_lat_count 2\n"
      "# TYPE pbw_lat_p50 gauge\n"
      "pbw_lat_p50 5\n"
      "# TYPE pbw_lat_p95 gauge\n"
      "pbw_lat_p95 9\n"
      "# TYPE pbw_lat_p99 gauge\n"
      "pbw_lat_p99 9\n";
  EXPECT_EQ(obs::render_prometheus(registry.to_json()), expected);
}

TEST(Prometheus, EmptyRegistryRendersEmpty) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(obs::render_prometheus(registry.to_json()), "");
}

// ---- rate estimator / ETA --------------------------------------------------

TEST(Rate, UnknownBeforeTwoSamplesZeroWhenDone) {
  obs::RateEstimator rate;
  EXPECT_DOUBLE_EQ(rate.rate(), 0.0);
  EXPECT_DOUBLE_EQ(rate.eta_seconds(10), -1.0);
  rate.observe(0.0, 0);
  EXPECT_DOUBLE_EQ(rate.eta_seconds(10), -1.0);
  rate.observe(1.0, 2);
  EXPECT_DOUBLE_EQ(rate.rate(), 2.0);
  EXPECT_DOUBLE_EQ(rate.eta_seconds(10), 5.0);
  EXPECT_DOUBLE_EQ(rate.eta_seconds(0), 0.0);
}

TEST(Rate, EtaMonotoneUnderConstantRate) {
  // The contract: at a constant completion rate with shrinking remaining
  // work, the estimate never increases.
  obs::RateEstimator rate(30.0);
  rate.observe(0.0, 0);
  double last_eta = 1e300;
  for (std::uint64_t t = 1; t <= 100; ++t) {
    rate.observe(static_cast<double>(t), t);  // 1 job/s
    const double eta = rate.eta_seconds(100 - t);
    ASSERT_GE(eta, 0.0);
    ASSERT_LE(eta, last_eta) << "ETA rose at t=" << t;
    last_eta = eta;
  }
  EXPECT_DOUBLE_EQ(last_eta, 0.0);
}

TEST(Rate, WindowAgesOutOldSamples) {
  obs::RateEstimator rate(10.0);
  rate.observe(0.0, 0);
  rate.observe(1.0, 100);  // burst: 100 jobs/s
  // Long quiet stretch; the burst leaves the window and the measured rate
  // reflects recent history only.
  rate.observe(50.0, 101);
  rate.observe(60.0, 102);
  EXPECT_NEAR(rate.rate(), 0.1, 1e-12);
  EXPECT_LE(rate.sample_count(), 3u);
}

TEST(Rate, PruningAlwaysKeepsTwoNewestSamples) {
  obs::RateEstimator rate(0.001);  // window shorter than sample spacing
  rate.observe(0.0, 0);
  rate.observe(10.0, 5);
  rate.observe(20.0, 10);
  EXPECT_EQ(rate.sample_count(), 2u);
  EXPECT_NEAR(rate.rate(), 0.5, 1e-12);  // last-interval rate, not blind
}

// ---- watchdog --------------------------------------------------------------

TEST(Watchdog, FlagsSlowTaskOncePerEpisode) {
  std::vector<obs::WatchdogTask> board;
  std::vector<std::string> fired;
  obs::Watchdog dog(
      5.0, [&] { return board; },
      [&](const obs::WatchdogTask& task) { fired.push_back(task.name); });

  board = {{"fast", 1.0}, {"slow", 3.0}};
  EXPECT_TRUE(dog.check().empty());
  EXPECT_TRUE(fired.empty());

  board = {{"fast", 2.0}, {"slow", 6.0}};  // slow crosses the threshold
  auto stalled = dog.check();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(stalled[0].name, "slow");
  EXPECT_EQ(fired, std::vector<std::string>{"slow"});

  board = {{"slow", 7.0}};  // still stalled: reported, not re-fired
  stalled = dog.check();
  ASSERT_EQ(stalled.size(), 1u);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(dog.stalls_detected(), 1u);

  board = {};  // the job finished; its episode ends
  EXPECT_TRUE(dog.check().empty());

  board = {{"slow", 6.0}};  // same key stalls again: a new episode fires
  dog.check();
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(dog.stalls_detected(), 2u);
}

TEST(Watchdog, HeartbeatThreadDetectsFakeSlowJob) {
  std::vector<obs::WatchdogTask> board = {{"wedged", 10.0}};
  std::mutex mutex;
  obs::Watchdog dog(
      0.001,
      [&] {
        std::lock_guard lock(mutex);
        return board;
      },
      [](const obs::WatchdogTask&) {});
  dog.start(0.002);
  for (int i = 0; i < 500 && dog.stalls_detected() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  dog.stop();
  EXPECT_GE(dog.stalls_detected(), 1u);
}

// ---- campaign status / the /status document --------------------------------

TEST(CampaignStatus, StatusDocumentSchema) {
  campaign::CampaignStatus status;
  EXPECT_EQ(status.to_json().get("state")->as_string(), "idle");

  status.begin(/*total=*/10, /*skipped=*/2, /*workers=*/2);
  status.worker_begin(0, "jobA");
  status.job_done("scenario1", 0.5, /*recosted=*/false);
  status.job_done("scenario1", 0.1, /*recosted=*/true);
  status.set_tape_cache(/*hits=*/3, /*misses=*/1, /*evictions=*/0,
                        /*rejected=*/2, /*bytes=*/1024);

  const util::Json j = status.to_json();
  EXPECT_EQ(j.get("state")->as_string(), "running");
  EXPECT_GE(j.get("elapsed_seconds")->as_double(), 0.0);

  const util::Json* jobs = j.get("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->get("total")->as_int(), 10);
  EXPECT_EQ(jobs->get("skipped")->as_int(), 2);
  EXPECT_EQ(jobs->get("done")->as_int(), 2);
  EXPECT_EQ(jobs->get("simulated")->as_int(), 1);
  EXPECT_EQ(jobs->get("recosted")->as_int(), 1);
  EXPECT_EQ(jobs->get("failed")->as_int(), 0);
  EXPECT_EQ(jobs->get("remaining")->as_int(), 6);

  const util::Json* cache = j.get("tape_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->get("hits")->as_int(), 3);
  EXPECT_EQ(cache->get("rejected")->as_int(), 2);
  EXPECT_DOUBLE_EQ(cache->get("hit_rate")->as_double(), 0.75);

  const util::Json* scenario = j.get("scenarios")->get("scenario1");
  ASSERT_NE(scenario, nullptr);
  EXPECT_EQ(scenario->get("done")->as_int(), 2);
  EXPECT_GT(scenario->get("jobs_per_second")->as_double(), 0.0);

  ASSERT_NE(j.get("rate_jobs_per_second"), nullptr);
  ASSERT_NE(j.get("eta_seconds"), nullptr);

  const util::Json* workers = j.get("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->size(), 2u);
  EXPECT_EQ(workers->at(0).get("job")->as_string(), "jobA");
  EXPECT_EQ(workers->at(1).get("job")->as_string(), "");

  status.finish(/*interrupted=*/false);
  EXPECT_EQ(status.to_json().get("state")->as_string(), "done");
  status.finish(/*interrupted=*/true);
  EXPECT_EQ(status.to_json().get("state")->as_string(), "interrupted");
}

TEST(CampaignStatus, InFlightBoardAndStallMarks) {
  campaign::CampaignStatus status;
  status.begin(4, 0, 2);
  status.worker_begin(0, "slow-job");
  status.worker_begin(1, "quick-job");
  status.worker_end(1);

  const auto tasks = status.in_flight();
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].name, "slow-job");
  EXPECT_GE(tasks[0].seconds, 0.0);

  status.mark_stalled("slow-job");
  const util::Json j = status.to_json();
  ASSERT_EQ(j.get("stalled")->size(), 1u);
  EXPECT_EQ(j.get("stalled")->at(0).as_string(), "slow-job");
  EXPECT_TRUE(j.get("workers")->at(0).get("stalled")->as_bool());
}

// ---- shutdown signals ------------------------------------------------------

TEST(Signals, HandlerSetsFlagOnFirstSignal) {
  obs::install_shutdown_signals();
  obs::reset_shutdown_for_tests();
  EXPECT_FALSE(obs::shutdown_requested());
  EXPECT_FALSE(obs::shutdown_flag()->load());
  ::raise(SIGTERM);  // one signal only: a second would _exit the test
  EXPECT_TRUE(obs::shutdown_requested());
  EXPECT_EQ(obs::shutdown_signal(), SIGTERM);
  EXPECT_TRUE(obs::shutdown_flag()->load());
  obs::reset_shutdown_for_tests();
  EXPECT_FALSE(obs::shutdown_requested());
}

// ---- HTTP endpoint (real loopback sockets) ---------------------------------

/// Minimal blocking HTTP client: one request, whole response as a string.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                "Connection: close\r\n\r\n");
}

TEST(HttpServer, ServesHandlersOverLoopback) {
  obs::HttpServer server;
  server.handle("/metrics", [] {
    obs::HttpResponse r;
    r.body = "metric 1\n";
    return r;
  });
  server.handle("/status", [] {
    obs::HttpResponse r;
    r.content_type = "application/json";
    r.body = "{\"state\":\"running\"}";
    return r;
  });
  server.handle("/boom", []() -> obs::HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start(0);  // ephemeral port
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("metric 1\n"), std::string::npos);

  // Query strings are stripped before handler lookup.
  const std::string with_query = http_get(server.port(), "/status?pretty=1");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);
  EXPECT_NE(with_query.find("application/json"), std::string::npos);
  EXPECT_NE(with_query.find("\"state\":\"running\""), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_request(server.port(),
                         "POST /metrics HTTP/1.1\r\nHost: x\r\n"
                         "Connection: close\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/boom").find("500"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(HttpServer, SequentialRequestsAndRestartOnNewPort) {
  obs::HttpServer server;
  int hits = 0;
  server.handle("/count", [&hits] {
    obs::HttpResponse r;
    r.body = std::to_string(++hits);
    return r;
  });
  server.start(0);
  const std::uint16_t port = server.port();
  EXPECT_NE(http_get(port, "/count").find("\r\n\r\n1"), std::string::npos);
  EXPECT_NE(http_get(port, "/count").find("\r\n\r\n2"), std::string::npos);
  EXPECT_NE(http_get(port, "/count").find("\r\n\r\n3"), std::string::npos);
  server.stop();
}

TEST(HttpServer, ServesLivePrometheusSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("live.requests").add(7);
  obs::HttpServer server;
  server.handle("/metrics", [&registry] {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::render_prometheus(registry.to_json());
    return r;
  });
  server.start(0);
  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("pbw_live_requests 7"), std::string::npos);
  server.stop();
}

// ---- trace context ---------------------------------------------------------

TEST(TraceContext, RootFormatParseRoundTrip) {
  const obs::TraceContext root = obs::TraceContext::make_root();
  ASSERT_TRUE(root.valid());
  const std::string wire = root.format();
  ASSERT_EQ(wire.size(), 55u);
  EXPECT_EQ(wire.substr(0, 3), "00-");
  EXPECT_EQ(wire.substr(52), "-01");

  const obs::TraceContext back = obs::TraceContext::parse(wire);
  ASSERT_TRUE(back.valid());
  EXPECT_EQ(back.trace_hi, root.trace_hi);
  EXPECT_EQ(back.trace_lo, root.trace_lo);
  EXPECT_EQ(back.span_id, root.span_id);
  EXPECT_TRUE(back.same_trace(root));
  EXPECT_EQ(back.trace_id_hex(), root.trace_id_hex());
  EXPECT_EQ(back.trace_id_hex().size(), 32u);

  // Two roots never share a trace; an invalid context formats to "".
  EXPECT_FALSE(obs::TraceContext::make_root().same_trace(root));
  EXPECT_EQ(obs::TraceContext{}.format(), "");
}

TEST(TraceContext, ChildSharesTraceWithFreshSpan) {
  const obs::TraceContext root = obs::TraceContext::make_root();
  const obs::TraceContext child = root.child();
  ASSERT_TRUE(child.valid());
  EXPECT_TRUE(child.same_trace(root));
  EXPECT_NE(child.span_id, root.span_id);
  // An invalid context has no children.
  EXPECT_FALSE(obs::TraceContext{}.child().valid());
}

TEST(TraceContext, ParseRejectsMalformedWire) {
  const std::string good = obs::TraceContext::make_root().format();
  EXPECT_TRUE(obs::TraceContext::parse(good).valid());
  // Uppercase hex is tolerated (case-insensitive parse, lowercase emit).
  std::string upper = good;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  // "00-...-01" survives toupper unchanged in its literal parts.
  EXPECT_TRUE(obs::TraceContext::parse(upper).valid());

  const std::string bad[] = {
      "",                                  // empty
      good.substr(0, 54),                  // truncated by one byte
      good + "0",                          // one byte too long
      good + good,                         // oversized
      "01" + good.substr(2),               // unknown version
      std::string(55, 'z'),                // no structure at all
      "00-zz" + good.substr(5),            // bad hex in the trace id
      good.substr(0, 36) + "zz" + good.substr(38),  // bad hex in the span id
      "00-00000000000000000000000000000000-1234567890abcdef-01",  // zero trace
      "00-1234567890abcdef1234567890abcdef-0000000000000000-01",  // zero span
  };
  for (const std::string& wire : bad) {
    const obs::TraceContext parsed = obs::TraceContext::parse(wire);
    EXPECT_FALSE(parsed.valid()) << "accepted: " << wire;
    EXPECT_EQ(parsed.format(), "");
  }
}

TEST(TraceContext, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(obs::current_context().valid());
  const obs::TraceContext outer = obs::TraceContext::make_root();
  {
    obs::ScopedContext a(outer);
    EXPECT_EQ(obs::current_context().span_id, outer.span_id);
    const obs::TraceContext inner = outer.child();
    {
      obs::ScopedContext b(inner);
      EXPECT_EQ(obs::current_context().span_id, inner.span_id);
    }
    EXPECT_EQ(obs::current_context().span_id, outer.span_id);
  }
  EXPECT_FALSE(obs::current_context().valid());
}

TEST(TraceContext, SpansAreStampedWithTheCurrentContext) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  const obs::TraceContext trace = obs::TraceContext::make_root();
  {
    PBW_SPAN("unstamped");
  }
  {
    obs::ScopedContext scope(trace);
    PBW_SPAN("stamped");
  }
  const auto events = registry.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "unstamped");
  EXPECT_EQ(events[0].trace_hi, 0u);
  EXPECT_EQ(events[0].trace_lo, 0u);
  EXPECT_EQ(events[0].parent_span, 0u);
  EXPECT_EQ(events[1].name, "stamped");
  EXPECT_EQ(events[1].trace_hi, trace.trace_hi);
  EXPECT_EQ(events[1].trace_lo, trace.trace_lo);
  EXPECT_EQ(events[1].parent_span, trace.span_id);
  registry.reset();
}

TEST(TraceContext, RequestIdsAreUniqueAndPrefixed) {
  const std::string a = obs::next_request_id();
  const std::string b = obs::next_request_id();
  EXPECT_EQ(a.size(), 18u);
  EXPECT_EQ(a.substr(0, 2), "r-");
  EXPECT_NE(a, b);
}

// ---- scoped span collector -------------------------------------------------

TEST(SpanCollector, RedirectsEventsAwayFromTheGlobalBuffer) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  {
    PBW_SPAN("global_before");
  }
  std::vector<obs::SpanEvent> collected;
  {
    obs::ScopedSpanCollector collector;
    {
      PBW_SPAN("diverted");
    }
    collected = collector.take();
  }
  {
    PBW_SPAN("global_after");
  }
  // The diverted span reached only the collector, but its aggregate (and
  // metric mirror) still landed globally.
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].name, "diverted");
  const auto events = registry.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "global_before");
  EXPECT_EQ(events[1].name, "global_after");
  EXPECT_EQ(registry.aggregates().at("diverted").count, 1u);
  registry.reset();
}

TEST(SpanCollector, NestedCollectorsRestoreTheOuterOne) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  obs::ScopedSpanCollector outer;
  {
    obs::ScopedSpanCollector inner;
    {
      PBW_SPAN("inner_span");
    }
    EXPECT_EQ(inner.take().size(), 1u);
  }
  {
    PBW_SPAN("outer_span");
  }
  const auto events = outer.take();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "outer_span");
  EXPECT_TRUE(registry.events().empty());
  registry.reset();
}

TEST(Span, NoteDroppedFeedsTheCounterAndStatusBoard) {
  auto& registry = obs::SpanRegistry::global();
  registry.reset();
  const std::uint64_t counter_before =
      obs::MetricsRegistry::global().counter("span.events_dropped").value();
  registry.note_dropped(3);
  EXPECT_EQ(registry.dropped(), 3u);
  EXPECT_EQ(
      obs::MetricsRegistry::global().counter("span.events_dropped").value(),
      counter_before + 3);
  // The campaign status board surfaces the same tally.
  campaign::CampaignStatus status;
  const util::Json j = status.to_json();
  ASSERT_NE(j.get("span_events_dropped"), nullptr);
  EXPECT_EQ(j.get("span_events_dropped")->as_int(), 3);
  registry.reset();
}

// ---- prometheus label rendering --------------------------------------------

TEST(Prometheus, LabeledSeriesShareOneTypeHeader) {
  obs::MetricsRegistry registry;
  registry.counter("http.requests{method=\"GET\",path=\"/status\",status=\"200\"}")
      .add(4);
  registry.counter("http.requests{method=\"GET\",path=\"/status\",status=\"404\"}")
      .add(1);
  registry.counter("plain.count").add(2);
  const std::string text = obs::render_prometheus(registry.to_json());
  // The base name is sanitized; the label block passes through verbatim.
  EXPECT_NE(text.find("pbw_http_requests{method=\"GET\",path=\"/status\","
                      "status=\"200\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("pbw_http_requests{method=\"GET\",path=\"/status\","
                      "status=\"404\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pbw_plain_count 2"), std::string::npos);
  // One # TYPE line per base name, even with several labeled series.
  std::size_t type_lines = 0;
  std::size_t at = 0;
  while ((at = text.find("# TYPE pbw_http_requests ", at)) !=
         std::string::npos) {
    ++type_lines;
    ++at;
  }
  EXPECT_EQ(type_lines, 1u);
}

// ---- http middleware: ids, metrics, tracing, access log --------------------

std::string trace_get(std::uint16_t port, const std::string& path,
                      const std::string& header_value) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n" +
                                obs::kTraceHeader + ": " + header_value +
                                "\r\nConnection: close\r\n\r\n");
}

TEST(HttpServer, MiddlewareStampsIdsMetricsAndPropagatesTraces) {
  auto& metrics = obs::MetricsRegistry::global();
  const std::string ok_series =
      "http.requests{method=\"GET\",path=\"/echo\",status=\"200\"}";
  const std::uint64_t ok_before = metrics.counter(ok_series).value();

  obs::HttpServer server;
  std::mutex seen_mutex;  // handler runs on the server thread
  obs::HttpRequest seen_storage;
  server.route("GET", "/echo",
               [&seen_mutex, &seen_storage](const obs::HttpRequest& r) {
                 std::lock_guard lock(seen_mutex);
                 seen_storage = r;
                 obs::HttpResponse resp;
                 resp.body = obs::current_context().trace_id_hex();
                 return resp;
               });
  auto seen = [&seen_mutex, &seen_storage] {
    std::lock_guard lock(seen_mutex);
    return seen_storage;
  };
  server.start(0);
  const std::uint16_t port = server.port();

  // No header: the middleware mints a fresh root and installs it.
  const std::string bare = http_get(port, "/echo");
  EXPECT_NE(bare.find("X-Pbw-Request-Id: r-"), std::string::npos);
  EXPECT_FALSE(seen().trace_propagated);
  ASSERT_TRUE(seen().trace.valid());
  EXPECT_NE(bare.find(seen().trace.trace_id_hex()), std::string::npos);
  EXPECT_EQ(seen().id.substr(0, 2), "r-");

  // A valid header: the handler runs under the caller's trace.
  const obs::TraceContext upstream = obs::TraceContext::make_root();
  const std::string traced = trace_get(port, "/echo", upstream.format());
  EXPECT_NE(traced.find("200 OK"), std::string::npos);
  EXPECT_TRUE(seen().trace_propagated);
  EXPECT_TRUE(seen().trace.same_trace(upstream));
  EXPECT_EQ(seen().trace.span_id, upstream.span_id);
  EXPECT_NE(traced.find(upstream.trace_id_hex()), std::string::npos);

  // Fuzzed headers: truncated, junk, oversized — all served, trace local.
  for (const std::string& hostile :
       {upstream.format().substr(0, 20), std::string("not-a-trace"),
        std::string(obs::kMaxTraceHeaderBytes + 10, 'a')}) {
    const std::string served = trace_get(port, "/echo", hostile);
    EXPECT_NE(served.find("200 OK"), std::string::npos) << hostile.size();
    EXPECT_FALSE(seen().trace_propagated);
    EXPECT_TRUE(seen().trace.valid());
    EXPECT_FALSE(seen().trace.same_trace(upstream));
  }

  // 404s land on the "unmatched" label, never the raw path.
  const std::string unmatched_series =
      "http.requests{method=\"GET\",path=\"unmatched\",status=\"404\"}";
  const std::uint64_t unmatched_before =
      metrics.counter(unmatched_series).value();
  http_get(port, "/definitely/not/registered");
  EXPECT_EQ(metrics.counter(unmatched_series).value(), unmatched_before + 1);

  server.stop();
  EXPECT_EQ(metrics.counter(ok_series).value(), ok_before + 5);
  const util::Json latency =
      metrics.histogram("http.latency./echo", 0.0, 10.0, 64).to_json();
  EXPECT_GE(latency.get("count")->as_int(), 5);
  EXPECT_EQ(metrics.gauge("http.in_flight").value(), 0.0);
}

TEST(HttpServer, AccessLogWritesOneJsonRowPerRequest) {
  const auto log_path =
      (std::filesystem::temp_directory_path() / "pbw_access_log_test.jsonl")
          .string();
  std::remove(log_path.c_str());

  obs::HttpServer server;
  server.handle("/ping", [] {
    obs::HttpResponse r;
    r.body = "pong";
    return r;
  });
  server.set_access_log(log_path);
  server.start(0);
  const std::uint16_t port = server.port();
  http_get(port, "/ping");
  http_get(port, "/missing");
  server.stop();

  std::ifstream in(log_path);
  std::vector<util::Json> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(util::Json::parse(line));
  }
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].get("method")->as_string(), "GET");
  EXPECT_EQ(rows[0].get("path")->as_string(), "/ping");
  EXPECT_EQ(rows[0].get("status")->as_int(), 200);
  EXPECT_GT(rows[0].get("bytes")->as_int(), 0);
  EXPECT_GE(rows[0].get("duration_ms")->as_double(), 0.0);
  EXPECT_EQ(rows[0].get("id")->as_string().substr(0, 2), "r-");
  EXPECT_EQ(rows[0].get("trace")->as_string().size(), 32u);
  EXPECT_EQ(rows[1].get("path")->as_string(), "/missing");
  EXPECT_EQ(rows[1].get("status")->as_int(), 404);
  EXPECT_NE(rows[0].get("id")->as_string(), rows[1].get("id")->as_string());
  std::remove(log_path.c_str());
}

// ---- chrome trace validator ------------------------------------------------

TEST(ChromeTrace, ValidatorAcceptsWriterOutput) {
  obs::TraceRun run;
  run.id = 0;
  run.info.model = "bsp";
  run.records.push_back({0, 10.0, 4.0, 2.0, 2.0, 0.0, 0.0, 4.0, "w", 5, 1});
  std::vector<obs::SpanEvent> spans;
  spans.push_back({"phase", 100, 50, 0, 0});
  std::ostringstream out;
  obs::write_chrome_trace({run}, spans, out);
  std::istringstream in(out.str());
  const obs::ChromeTraceValidation v = obs::validate_chrome_trace(in);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.slices, 2u);  // one superstep + one span
  EXPECT_EQ(v.metas, 2u);   // run process name + host process name
}

TEST(ChromeTrace, ValidatorRejectsStructuralJunk) {
  const std::pair<const char*, const char*> cases[] = {
      {"not json at all", "not JSON"},
      {"[]", "not an object"},
      {"{}", "missing traceEvents"},
      {"{\"traceEvents\": 7}", "missing traceEvents"},
      {"{\"traceEvents\": [42]}", "not an object"},
      {"{\"traceEvents\": [{\"name\": \"x\"}]}", "missing ph"},
      {"{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"x\", \"pid\": 0, "
       "\"tid\": 0, \"ts\": 1}]}",
       "bad dur"},
      {"{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"x\", \"pid\": 0, "
       "\"tid\": 0, \"ts\": 1, \"dur\": -2}]}",
       "bad dur"},
  };
  for (const auto& [doc, want] : cases) {
    std::istringstream in(doc);
    const obs::ChromeTraceValidation v = obs::validate_chrome_trace(in);
    EXPECT_FALSE(v.ok) << doc;
    EXPECT_NE(v.error.find(want), std::string::npos)
        << doc << " -> " << v.error;
  }
}

}  // namespace
