// Cross-module integration tests: the engine fast-path equivalence, the
// Section 4 grouping emulation run end-to-end, trace-report attribution,
// the CountN + Unbalanced-Send pipeline (the full Theorem 6.2 protocol
// with unknown n), sojourn bounds in the dynamic setting, and consistency
// between the closed-form bounds and the measured algorithms.
#include <gtest/gtest.h>

#include <cmath>

#include "pbw.hpp"
#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "algos/broadcast.hpp"
#include "algos/one_to_all.hpp"
#include "algos/prefix.hpp"
#include "core/bounds.hpp"
#include "core/model/emulation.hpp"
#include "core/model/models.hpp"
#include "core/trace_report.hpp"
#include "engine/machine.hpp"
#include "sched/count_n.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

namespace {

using namespace pbw;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

// The engine-computed superstep cost must equal the schedule fast path on
// arbitrary workloads and both penalties — the AQT simulations rely on it.
TEST(Integration, EngineMatchesFastPathAcrossWorkloads) {
  util::Xoshiro256 rng(1);
  const std::uint32_t p = 64, m = 8;
  for (auto penalty : {core::Penalty::kLinear, core::Penalty::kExponential}) {
    const core::BspM model(params(p, 8, m, 4), penalty);
    for (int kind = 0; kind < 3; ++kind) {
      const auto rel = kind == 0   ? sched::balanced_relation(p, 16, rng)
                       : kind == 1 ? sched::point_skew_relation(p, 1024, 0.7, rng)
                                   : sched::variable_length_relation(p, 256, 6, 0.2, rng);
      const auto schedule = kind == 2
                                ? sched::long_message_schedule(
                                      rel, m, 0.25, rel.total_flits(), rng)
                                : sched::unbalanced_send_schedule(
                                      rel, m, 0.25, rel.total_flits(), rng);
      const auto run = sched::route_relation(model, rel, schedule, m, 4);
      const auto fast = sched::evaluate_schedule(rel, schedule, m, penalty, 4);
      EXPECT_DOUBLE_EQ(run.send_time, fast.total)
          << "penalty=" << static_cast<int>(penalty) << " kind=" << kind;
      EXPECT_TRUE(run.delivered);
    }
  }
}

// Section 4 preamble: a BSP(g) algorithm emulated on the BSP(m) by the
// grouping schedule costs (within rounding) the BSP(g) time.
TEST(Integration, GroupingEmulationPreservesTime) {
  util::Xoshiro256 rng(2);
  const std::uint32_t p = 128, m = 16;
  const double g = p / m, L = 4;
  const auto rel = sched::balanced_relation(p, 8, rng);

  const core::BspG local(params(p, g, m, L));
  const auto on_g =
      sched::route_relation(local, rel, sched::naive_schedule(rel), m, L);

  const core::BspM global(params(p, g, m, L), core::Penalty::kExponential);
  const auto on_m = sched::route_relation(global, rel,
                                          sched::emulation_schedule(rel, g), m, L);
  EXPECT_TRUE(on_m.within_limit);
  // "With the same time bound": the emulation never costs more than the
  // BSP(g) run (it can cost less — here the g-model also pays g x the
  // receive imbalance), and it occupies exactly g * xbar slots.
  EXPECT_LE(on_m.send_time, on_g.send_time + 1e-9);
  EXPECT_GE(on_m.send_time, g * static_cast<double>(rel.max_sent()) - 1e-9);
}

// Full Theorem 6.2 protocol with n UNKNOWN: run CountN on the engine,
// hand its result to the scheduler, and confirm the end-to-end time is
// bounded by the theorem's expression.
TEST(Integration, UnknownNPipeline) {
  util::Xoshiro256 rng(3);
  const std::uint32_t p = 128, m = 16;
  const double L = 4, eps = 0.5;
  const core::BspM model(params(p, p / m, m, L));
  const auto rel = sched::point_skew_relation(p, 4096, 0.4, rng);

  std::vector<std::uint64_t> x(p);
  for (std::uint32_t i = 0; i < p; ++i) x[i] = rel.sent_by(i);
  const auto counted = sched::count_and_broadcast(model, x, m,
                                                  static_cast<std::uint32_t>(L));
  ASSERT_TRUE(counted.all_procs_agree);
  ASSERT_EQ(counted.n, rel.total_flits());

  const auto schedule = sched::unbalanced_send_schedule(rel, m, eps, counted.n, rng);
  const auto run = sched::route_relation(model, rel, schedule, m, L);
  const double bound = core::bounds::unbalanced_send_bound(
      counted.n, rel.max_sent(), rel.max_received(), p, m, L, eps);
  EXPECT_LE(run.send_time + counted.time, 4 * bound);
  EXPECT_TRUE(run.delivered);
}

// Prefix sums give the same total CountN computes, at comparable cost.
TEST(Integration, PrefixAndCountNAgree) {
  const std::uint32_t p = 256, m = 16;
  const double L = 4;
  const core::BspM model(params(p, p / m, m, L));
  std::vector<engine::Word> inputs(p);
  std::vector<std::uint64_t> counts(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    inputs[i] = static_cast<engine::Word>(i % 7);
    counts[i] = static_cast<std::uint64_t>(i % 7);
  }
  const auto prefix = algos::prefix_sums_bsp(model, inputs, m,
                                             static_cast<std::uint32_t>(L));
  const auto counted = sched::count_and_broadcast(model, counts, m,
                                                  static_cast<std::uint32_t>(L));
  ASSERT_TRUE(prefix.correct);
  ASSERT_TRUE(counted.all_procs_agree);
  EXPECT_EQ(static_cast<std::uint64_t>(prefix.total), counted.n);
  EXPECT_LE(prefix.time, 4 * counted.time + 4 * L);
}

// ---- trace report -----------------------------------------------------------

TEST(Integration, TraceReportAttributesAggregateBoundSupersteps) {
  // One-to-all on BSP(m): the sending superstep is c_m/h-bound, the drain
  // superstep is L-bound.
  class OneToAll final : public engine::SuperstepProgram {
   public:
    bool step(engine::ProcContext& ctx) override {
      if (ctx.superstep() == 0) {
        if (ctx.id() == 0) {
          for (engine::ProcId i = 1; i < ctx.p(); ++i) ctx.send(i, 1, i);
        }
        return true;
      }
      return false;
    }
  } prog;
  const auto prm = params(64, 8, 8, 4);
  const core::BspM model(prm);
  engine::MachineOptions opts;
  opts.trace = true;
  engine::Machine machine(model, opts);
  const auto run = machine.run(prog);
  const auto breakdown =
      core::analyze_trace(run, prm, core::TraceModel::kBspM);
  EXPECT_EQ(breakdown.supersteps, 2u);
  EXPECT_DOUBLE_EQ(breakdown.total, run.total_time);
  // Superstep 0: h = c_m = 63 dominates; tie goes to the gap term.
  EXPECT_GT(breakdown.gap + breakdown.aggregate, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.latency, 4.0);
}

TEST(Integration, TraceReportWorkBound) {
  class Worker final : public engine::SuperstepProgram {
   public:
    bool step(engine::ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.charge(1000);
      return true;
    }
  } prog;
  const auto prm = params(8, 2, 4, 2);
  const core::BspG model(prm);
  engine::MachineOptions opts;
  opts.trace = true;
  engine::Machine machine(model, opts);
  const auto run = machine.run(prog);
  const auto breakdown = core::analyze_trace(run, prm, core::TraceModel::kBspG);
  EXPECT_DOUBLE_EQ(breakdown.work, 1000.0);
  EXPECT_GT(breakdown.fraction(core::CostTerm::kWork), 0.99);
  EXPECT_FALSE(breakdown.render().empty());
}

TEST(Integration, TraceReportQsmContention) {
  class HotRead final : public engine::SuperstepProgram {
   public:
    void setup(engine::Machine& m) override { m.resize_shared(4); }
    bool step(engine::ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.read(0, ctx.id() / 4 + 1);  // all processors read cell 0
      return true;
    }
  } prog;
  const auto prm = params(64, 2, 16, 1);
  const core::QsmM model(prm);
  engine::MachineOptions opts;
  opts.trace = true;
  engine::Machine machine(model, opts);
  const auto run = machine.run(prog);
  const auto breakdown = core::analyze_trace(run, prm, core::TraceModel::kQsmM);
  EXPECT_GT(breakdown.contention, 0.0);  // kappa = 64 dominates
}

// ---- dynamic sojourn ----------------------------------------------------------

TEST(Integration, SojournBoundedWhenStable) {
  const std::uint32_t p = 32, m = 8, w = 128;
  aqt::AqtParams prm{p, /*alpha=*/0.5 * m, /*beta=*/0.4, w};
  auto adv = aqt::make_rotating_hotspot(prm);
  const auto r = aqt::run_algorithm_b(*adv, m, 0.25, 300, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  ASSERT_TRUE(r.stable);
  // Theorem 6.7: expected sojourn O(w^2/u); with ample slack the mean
  // stays within a few windows.
  EXPECT_LE(r.mean_sojourn, 4.0 * w);
  EXPECT_GE(r.mean_sojourn, 0.0);
}

TEST(Integration, SojournDivergesWhenUnstable) {
  const std::uint32_t p = 32, m = 4, w = 128;
  aqt::AqtParams prm{p, /*alpha=*/1.5 * m, /*beta=*/0.5, w};
  auto adv = aqt::make_steady(prm);
  const auto r = aqt::run_algorithm_b(*adv, m, 0.25, 300, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  EXPECT_FALSE(r.stable);
  EXPECT_GT(r.max_sojourn, 20.0 * w);
}

// ---- broadcast consistency across the model grid -----------------------------

TEST(Integration, BroadcastBeatsOneToAllLowerBoundStructure) {
  // Broadcasting one value is never slower than one-to-all personalized
  // (a broadcast could be implemented by p-1 distinct sends).
  const std::uint32_t p = 512, m = 32;
  const auto prm = params(p, p / m, m, 8);
  const core::BspM model(prm);
  const auto bcast = algos::broadcast_bsp_m(model, m, 8, 5);
  const auto o2a = algos::one_to_all_bsp(model);
  ASSERT_TRUE(bcast.correct && o2a.correct);
  EXPECT_LT(bcast.time, o2a.time);
}

// The umbrella header compiles and exposes the whole API (smoke use of a
// few symbols from each module).
TEST(Integration, UmbrellaHeaderWorks) {
  const auto prm = core::ModelParams::matched(8, 2, 2);
  const core::BspM model(prm);
  engine::Machine machine(model);
  EXPECT_EQ(machine.p(), 8u);
  EXPECT_GT(core::bounds::lg(16), 0.0);
}

// Randomized QSM programs must be host-thread invariant too (the list
// ranker draws coins from per-(proc, superstep) streams).
TEST(Integration, ListRankingDeterministicAcrossThreads) {
  const auto succ = algos::random_list(256, 11);
  core::ModelParams prm;
  prm.p = 256;
  prm.g = 8;
  prm.m = 32;
  prm.L = 1;
  const core::QsmM model(prm);
  engine::MachineOptions seq;
  seq.threads = 1;
  engine::MachineOptions par;
  par.threads = 4;
  const auto a = algos::list_rank_qsm(model, succ, 32, 32, seq);
  const auto b = algos::list_rank_qsm(model, succ, 32, 32, par);
  ASSERT_TRUE(a.correct && b.correct);
  EXPECT_DOUBLE_EQ(a.time, b.time);
  EXPECT_EQ(a.supersteps, b.supersteps);
}

TEST(Integration, MatchedPairOrderingHoldsEverywhere) {
  // For every problem we implement on both members of a matched pair, the
  // globally-limited model is never slower (it can always emulate).
  util::Xoshiro256 rng(4);
  const std::uint32_t p = 256, m = 16;
  const auto prm = params(p, p / m, m, 8);
  const core::BspG local(prm);
  const core::BspM global(prm);

  EXPECT_LE(algos::one_to_all_bsp(global).time, algos::one_to_all_bsp(local).time);
  EXPECT_LE(algos::broadcast_bsp_m(global, m, 8, 1).time,
            algos::broadcast_bsp_tree(local, 1, 1).time);

  const auto rel = sched::zipf_relation(p, 4096, 1.0, rng);
  const auto schedule =
      sched::unbalanced_send_schedule(rel, m, 0.25, rel.total_flits(), rng);
  EXPECT_LE(sched::route_relation(global, rel, schedule, m, 8).send_time,
            sched::route_relation(local, rel, sched::naive_schedule(rel), m, 8)
                .send_time);
}

}  // namespace
