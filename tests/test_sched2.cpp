// Second wave of scheduling tests: QSM mailbox routing, broad TEST_P
// property sweeps over every scheduler x workload shape, offline-optimal
// optimality against brute force on tiny instances, and failure injection
// on schedule validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "engine/error.hpp"
#include "sched/qsm_routing.hpp"
#include "sched/runner.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

namespace {

using namespace pbw;
using core::Penalty;
using sched::Relation;
using sched::SlotSchedule;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

// ---- QSM(m) mailbox routing ("exercise left to the reader") -----------------

TEST(QsmRouting, DeliversBalanced) {
  util::Xoshiro256 rng(1);
  const std::uint32_t p = 64, m = 8;
  const core::QsmM model(params(p, p / m, m, 1));
  const auto rel = sched::balanced_relation(p, 8, rng);
  const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                     rel.total_flits(), rng);
  const auto run = sched::route_relation_qsm(model, rel, sched, m, 1);
  EXPECT_TRUE(run.delivered);
  // With m = 8 the Chernoff exponent eps^2 m / 3 is tiny, so a mildly
  // overloaded slot is expected; the exponential charge stays benign.
  EXPECT_LE(run.max_mt, 2ull * m);
  EXPECT_LE(run.ratio, 2.6);  // write + read phases, each ~(1+eps) n/m
}

TEST(QsmRouting, SkewedWithinBound) {
  util::Xoshiro256 rng(2);
  const std::uint32_t p = 128, m = 16;
  const core::QsmM model(params(p, p / m, m, 1));
  const auto rel = sched::point_skew_relation(p, 4096, 0.6, rng);
  const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                     rel.total_flits(), rng);
  const auto run = sched::route_relation_qsm(model, rel, sched, m, 1);
  EXPECT_TRUE(run.delivered);
  EXPECT_LE(run.ratio, 2.6);
}

TEST(QsmRouting, QsmGPaysGapFactor) {
  util::Xoshiro256 rng(3);
  const std::uint32_t p = 128, m = 16;
  const double g = p / m;
  const core::QsmM global(params(p, g, m, 1));
  const core::QsmG local(params(p, g, m, 1));
  const auto rel = sched::point_skew_relation(p, 4096, 0.6, rng);
  const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                     rel.total_flits(), rng);
  const auto on_m = sched::route_relation_qsm(global, rel, sched, m, 1);
  const auto on_g = sched::route_relation_qsm(local, rel, sched, m, 1);
  ASSERT_TRUE(on_m.delivered && on_g.delivered);
  EXPECT_GT(on_g.send_time / on_m.send_time, g / 4);
}

TEST(QsmRouting, RejectsLongMessages) {
  Relation rel(4);
  rel.add(0, 1, 3);
  const core::QsmM model(params(4, 2, 2, 1));
  EXPECT_THROW((void)sched::route_relation_qsm(
                   model, rel, sched::naive_schedule(rel), 2, 1),
               engine::SimulationError);
}

TEST(QsmRouting, EmptyRelation) {
  Relation rel(8);
  const core::QsmM model(params(8, 2, 4, 1));
  const auto run = sched::route_relation_qsm(model, rel,
                                             sched::naive_schedule(rel), 4, 1);
  EXPECT_TRUE(run.delivered);
}

// ---- offline optimal vs brute force on tiny instances -----------------------

/// Brute-force the minimum occupied-slot count over all schedules of a
/// tiny relation by exhaustive slot assignment (unit messages, slots up to
/// a small horizon).
std::uint64_t brute_force_min_slots(const Relation& rel, std::uint32_t m,
                                    std::uint32_t horizon) {
  struct Msg {
    engine::ProcId src;
  };
  std::vector<Msg> msgs;
  for (std::uint32_t s = 0; s < rel.p(); ++s) {
    for (std::size_t k = 0; k < rel.items(s).size(); ++k) msgs.push_back({s});
  }
  std::uint64_t best = horizon + 1;
  std::vector<std::uint32_t> slot(msgs.size(), 0);
  // DFS over slot assignments with pruning on per-slot and per-proc caps.
  std::vector<std::vector<std::uint32_t>> per_slot_count(horizon + 1);
  std::function<void(std::size_t, std::uint64_t)> dfs = [&](std::size_t i,
                                                            std::uint64_t used) {
    if (used >= best) return;
    if (i == msgs.size()) {
      best = used;
      return;
    }
    for (std::uint32_t t = 1; t <= horizon; ++t) {
      // per-slot aggregate cap
      std::uint32_t count = 0;
      bool proc_clash = false;
      for (std::size_t j = 0; j < i; ++j) {
        if (slot[j] == t) {
          ++count;
          proc_clash |= (msgs[j].src == msgs[i].src);
        }
      }
      if (count >= m || proc_clash) continue;
      slot[i] = t;
      dfs(i + 1, std::max<std::uint64_t>(used, t));
      slot[i] = 0;
    }
  };
  dfs(0, 0);
  return best;
}

TEST(OfflineOptimal, MatchesBruteForceOnTinyInstances) {
  util::Xoshiro256 rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    Relation rel(4);
    const int msgs = 3 + static_cast<int>(rng.below(4));
    for (int k = 0; k < msgs; ++k) {
      const auto src = static_cast<engine::ProcId>(rng.below(4));
      auto dst = static_cast<engine::ProcId>(rng.below(3));
      if (dst >= src) ++dst;
      rel.add(src, dst);
    }
    const std::uint32_t m = 2;
    const auto sched = sched::offline_optimal_schedule(rel, m);
    const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kLinear, 1);
    const auto brute = brute_force_min_slots(rel, m, 8);
    EXPECT_LE(cost.slots_used, brute + 1) << "trial " << trial;
    EXPECT_TRUE(cost.within_limit);
  }
}

// ---- scheduler x workload property sweep -------------------------------------

enum class Sender { kUnbalanced, kConsecutive, kGranular, kLong };
enum class Shape { kBalanced, kPoint, kZipf, kDest, kVarLen };

struct SweepParam {
  Sender sender;
  Shape shape;
  std::uint32_t m;
};

class SchedulerSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SchedulerSweep, ValidRespectfulAndDelivered) {
  const auto prm = GetParam();
  util::Xoshiro256 rng(77 + static_cast<std::uint64_t>(prm.m));
  const std::uint32_t p = 128;
  Relation rel(p);
  switch (prm.shape) {
    case Shape::kBalanced: rel = sched::balanced_relation(p, 32, rng); break;
    case Shape::kPoint: rel = sched::point_skew_relation(p, 4096, 0.5, rng); break;
    case Shape::kZipf: rel = sched::zipf_relation(p, 4096, 1.1, rng); break;
    case Shape::kDest: rel = sched::dest_skew_relation(p, 4096, 1.1, rng); break;
    case Shape::kVarLen:
      rel = sched::variable_length_relation(p, 1024, 8, 0.2, rng);
      break;
  }
  const std::uint64_t n = rel.total_flits();
  SlotSchedule schedule(p);
  switch (prm.sender) {
    case Sender::kUnbalanced:
      if (rel.max_length() > 1) GTEST_SKIP() << "unit messages only";
      schedule = sched::unbalanced_send_schedule(rel, prm.m, 0.5, n, rng);
      break;
    case Sender::kConsecutive:
      schedule = sched::consecutive_send_schedule(rel, prm.m, 0.5, n, rng);
      break;
    case Sender::kGranular:
      schedule = sched::granular_send_schedule(rel, prm.m, 3.0, n, rng);
      break;
    case Sender::kLong:
      schedule = sched::long_message_schedule(rel, prm.m, 0.5, n, rng);
      break;
  }
  // (1) the schedule is internally consistent,
  sched::validate_schedule(rel, schedule);
  // (2) the realized cost is within a small factor of the optimum,
  const auto cost =
      sched::evaluate_schedule(rel, schedule, prm.m, Penalty::kExponential, 1);
  const double opt = core::bounds::routing_bsp_m_optimal(
      n, rel.max_sent(), rel.max_received(), prm.m, 1);
  const double slack = prm.sender == Sender::kGranular ? 7.0 : 3.0;
  EXPECT_LE(cost.total, slack * opt + 64.0);
  // (3) the engine agrees and every flit arrives.
  const core::BspM model(params(p, double(p) / prm.m, prm.m, 1));
  const auto run = sched::route_relation(model, rel, schedule, prm.m, 1);
  EXPECT_TRUE(run.delivered);
  EXPECT_DOUBLE_EQ(run.send_time, cost.total);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, SchedulerSweep,
    ::testing::Values(
        SweepParam{Sender::kUnbalanced, Shape::kBalanced, 8},
        SweepParam{Sender::kUnbalanced, Shape::kPoint, 16},
        SweepParam{Sender::kUnbalanced, Shape::kZipf, 32},
        SweepParam{Sender::kUnbalanced, Shape::kDest, 16},
        SweepParam{Sender::kConsecutive, Shape::kBalanced, 16},
        SweepParam{Sender::kConsecutive, Shape::kPoint, 32},
        SweepParam{Sender::kConsecutive, Shape::kVarLen, 16},
        SweepParam{Sender::kGranular, Shape::kBalanced, 8},
        SweepParam{Sender::kGranular, Shape::kZipf, 16},
        SweepParam{Sender::kLong, Shape::kVarLen, 8},
        SweepParam{Sender::kLong, Shape::kVarLen, 32},
        SweepParam{Sender::kLong, Shape::kPoint, 16}));

// ---- schedule validation failure injection -----------------------------------

TEST(ScheduleValidation, CatchesProcSlotCollision) {
  Relation rel(2);
  rel.add(0, 1);
  rel.add(0, 1);
  SlotSchedule bad(2);
  bad.start[0] = {3, 3};  // same slot twice for proc 0
  EXPECT_THROW(sched::validate_schedule(rel, bad), engine::SimulationError);
}

TEST(ScheduleValidation, CatchesSizeMismatch) {
  Relation rel(2);
  rel.add(0, 1);
  SlotSchedule bad(2);  // start[0] empty, relation has one item
  EXPECT_THROW(sched::validate_schedule(rel, bad), engine::SimulationError);
}

TEST(ScheduleValidation, CatchesFlitOverlap) {
  Relation rel(2);
  rel.add(0, 1, 4);
  rel.add(0, 1, 2);
  SlotSchedule bad(2);
  bad.start[0] = {1, 3};  // second message starts inside the first
  EXPECT_THROW(sched::validate_schedule(rel, bad), engine::SimulationError);
}

TEST(ScheduleValidation, WrappedLayoutDetectsWrapCollision) {
  Relation rel(1);
  rel.add(0, 0, 3);
  rel.add(0, 0, 2);
  SlotSchedule sched(1);
  sched.layout = sched::FlitLayout::kWrapped;
  sched.window = 4;  // 5 flits into 4 wrapped slots must collide
  sched.start[0] = {1, 4};
  EXPECT_THROW(sched::validate_schedule(rel, sched), engine::SimulationError);
}

TEST(ScheduleOccupancy, WrappedLayoutWraps) {
  Relation rel(1);
  rel.add(0, 0, 3);
  SlotSchedule sched(1);
  sched.layout = sched::FlitLayout::kWrapped;
  sched.window = 3;
  sched.start[0] = {2};  // flits at slots 2, 3, 1
  const auto occupancy = sched::slot_occupancy(rel, sched);
  ASSERT_EQ(occupancy.size(), 3u);
  EXPECT_EQ(occupancy[0], 1u);
  EXPECT_EQ(occupancy[1], 1u);
  EXPECT_EQ(occupancy[2], 1u);
}

// ---- misc edge cases -----------------------------------------------------------

TEST(Senders, EmptyRelationProducesEmptySchedules) {
  Relation rel(8);
  util::Xoshiro256 rng(5);
  for (const auto& schedule :
       {sched::naive_schedule(rel), sched::offline_optimal_schedule(rel, 4),
        sched::unbalanced_send_schedule(rel, 4, 0.5, 0, rng),
        sched::consecutive_send_schedule(rel, 4, 0.5, 0, rng),
        sched::granular_send_schedule(rel, 4, 3.0, 0, rng),
        sched::long_message_schedule(rel, 4, 0.5, 0, rng)}) {
    const auto cost = sched::evaluate_schedule(rel, schedule, 4, Penalty::kLinear, 1);
    EXPECT_EQ(cost.slots_used, 0u);
    EXPECT_DOUBLE_EQ(cost.c_m, 0.0);
  }
}

TEST(Senders, SingleMessage) {
  Relation rel(2);
  rel.add(0, 1);
  util::Xoshiro256 rng(6);
  const auto schedule = sched::unbalanced_send_schedule(rel, 1, 0.5, 1, rng);
  const auto cost = sched::evaluate_schedule(rel, schedule, 1, Penalty::kExponential, 1);
  EXPECT_TRUE(cost.within_limit);
  EXPECT_EQ(cost.slots_used, static_cast<std::uint64_t>(schedule.start[0][0]));
}

TEST(Senders, TemplateShiftEnforcesSeparation) {
  util::Xoshiro256 rng(8);
  const auto rel = sched::balanced_relation(64, 8, rng);
  const std::uint32_t gap = 3;
  const auto schedule = sched::template_shift_schedule(
      rel, 16, 0.5, rel.total_flits(), gap, rng);
  sched::validate_schedule(rel, schedule);
  // Template positions are stride-separated: within a processor, sorted
  // slots differ by at least gap+1 except across the single wrap seam.
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    auto slots = schedule.start[src];
    std::sort(slots.begin(), slots.end());
    int violations = 0;
    for (std::size_t k = 1; k < slots.size(); ++k) {
      if (slots[k] - slots[k - 1] < gap + 1) ++violations;
    }
    EXPECT_LE(violations, 1) << "proc " << src;  // one seam allowed
  }
}

TEST(Senders, TemplateShiftRespectsAggregateLimit) {
  util::Xoshiro256 rng(9);
  const auto rel = sched::balanced_relation(256, 16, rng);
  const std::uint32_t m = 64;
  int ok = 0;
  for (int t = 0; t < 10; ++t) {
    const auto schedule = sched::template_shift_schedule(
        rel, m, 0.5, rel.total_flits(), 2, rng);
    const auto cost =
        sched::evaluate_schedule(rel, schedule, m, Penalty::kExponential, 1);
    ok += cost.within_limit;
  }
  EXPECT_GE(ok, 8);
}

TEST(Senders, TemplateShiftGapZeroBehavesLikeUnbalancedSend) {
  util::Xoshiro256 rng(10);
  const auto rel = sched::balanced_relation(64, 8, rng);
  const std::uint32_t m = 16;
  const auto schedule = sched::template_shift_schedule(
      rel, m, 0.25, rel.total_flits(), 0, rng);
  const auto cost =
      sched::evaluate_schedule(rel, schedule, m, Penalty::kExponential, 1);
  const double opt = core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, 1);
  EXPECT_LE(cost.total, 2.0 * opt);
}

TEST(Senders, TemplateShiftWindowScalesWithGap) {
  util::Xoshiro256 rng(11);
  const auto rel = sched::balanced_relation(64, 8, rng);
  const auto s0 = sched::template_shift_schedule(rel, 16, 0.25,
                                                 rel.total_flits(), 0, rng);
  const auto s4 = sched::template_shift_schedule(rel, 16, 0.25,
                                                 rel.total_flits(), 4, rng);
  const auto c0 = sched::evaluate_schedule(rel, s0, 16, Penalty::kLinear, 1);
  const auto c4 = sched::evaluate_schedule(rel, s4, 16, Penalty::kLinear, 1);
  // The stretched template costs ~(gap+1)x the slots (bandwidth paced down).
  EXPECT_GT(c4.slots_used, 3 * c0.slots_used);
}

TEST(Senders, OverheadZeroEqualsLongMessageSchedule) {
  util::Xoshiro256 rng(7);
  const auto rel = sched::variable_length_relation(32, 128, 4, 0.1, rng);
  util::Xoshiro256 rng_a(42), rng_b(42);
  const auto with0 = sched::overhead_schedule(rel, 0, 8, 0.25, rng_a);
  const auto plain = sched::long_message_schedule(rel, 8, 0.25,
                                                  rel.total_flits(), rng_b);
  EXPECT_EQ(with0.start, plain.start);
}

}  // namespace
