// Tests for the Section 4 algorithms: correctness on every model they
// target, plus cost-shape checks against the Table 1 bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;
using core::ModelParams;

ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

// ---- one-to-all personalized communication ------------------------------

TEST(OneToAll, BspMCostIsLinearInP) {
  const std::uint32_t p = 256, m = 16;
  const core::BspM model(params(p, p / m, m, 4));
  const auto r = algos::one_to_all_bsp(model);
  EXPECT_TRUE(r.correct);
  // Send superstep costs p-1 (h and c_m both p-1); drain costs L.
  EXPECT_NEAR(r.time, (p - 1) + 4.0, 1e-9);
}

TEST(OneToAll, BspGPaysGapFactor) {
  const std::uint32_t p = 256;
  const double g = 16;
  const core::BspG model(params(p, g, 16, 4));
  const auto r = algos::one_to_all_bsp(model);
  EXPECT_TRUE(r.correct);
  EXPECT_NEAR(r.time, g * (p - 1) + 4.0, 1e-9);
}

TEST(OneToAll, SeparationMatchesTheta) {
  const std::uint32_t p = 512, m = 32;
  const double g = p / m;
  const core::BspG local(params(p, g, m, 1));
  const core::BspM global(params(p, g, m, 1));
  const auto rl = algos::one_to_all_bsp(local);
  const auto rg = algos::one_to_all_bsp(global);
  ASSERT_TRUE(rl.correct && rg.correct);
  EXPECT_NEAR(rl.time / rg.time, g, g * 0.1);
}

TEST(OneToAll, QsmVariants) {
  const std::uint32_t p = 128, m = 8;
  const core::QsmM qm(params(p, p / m, m, 1));
  const core::QsmG qg(params(p, p / m, m, 1));
  const auto rm = algos::one_to_all_qsm(qm, m);
  const auto rg = algos::one_to_all_qsm(qg, m);
  EXPECT_TRUE(rm.correct);
  EXPECT_TRUE(rg.correct);
  EXPECT_GT(rg.time / rm.time, (p / m) / 4.0);  // Theta(g) separation
}

// ---- broadcast ------------------------------------------------------------

TEST(Broadcast, BspTreeInformsEveryone) {
  for (std::uint32_t p : {2u, 7u, 64u, 100u}) {
    const core::BspG model(params(p, 2, 1, 8));
    const auto r = algos::broadcast_bsp_tree(model, 4, 99);
    EXPECT_TRUE(r.correct) << "p=" << p;
  }
}

TEST(Broadcast, BspTreeCostMatchesFormula) {
  const std::uint32_t p = 4096;
  const double g = 2, L = 16;
  const core::BspG model(params(p, g, 1, L));
  const auto arity = static_cast<std::uint32_t>(L / g);  // optimal arity
  const auto r = algos::broadcast_bsp_tree(model, arity, 5);
  ASSERT_TRUE(r.correct);
  const double bound = core::bounds::broadcast_bsp_g(p, g, L);
  EXPECT_LE(r.time, 3 * bound);
  EXPECT_GE(r.time, bound / 3);
}

TEST(Broadcast, TernaryNonReceiptBothBits) {
  const std::uint32_t p = 243;
  const core::BspG model(params(p, 8, 1, 4));  // L <= g regime
  for (bool bit : {false, true}) {
    const auto r = algos::broadcast_ternary_bsp(model, bit);
    EXPECT_TRUE(r.correct) << "bit=" << bit;
    // g * ceil(log_3 p) = 8 * 5 = 40, plus trailing inference superstep(s)
    // costing L each.
    EXPECT_LE(r.time, core::bounds::broadcast_ternary(p, 8) + 2 * 4);
  }
}

TEST(Broadcast, TernaryOddSizes) {
  for (std::uint32_t p : {2u, 3u, 10u, 100u}) {
    const core::BspG model(params(p, 4, 1, 2));
    const auto r = algos::broadcast_ternary_bsp(model, true);
    EXPECT_TRUE(r.correct) << "p=" << p;
  }
}

TEST(Broadcast, BspMWithinBound) {
  const std::uint32_t p = 1024, m = 32;
  const double L = 8;
  const core::BspM model(params(p, p / m, m, L));
  const auto r = algos::broadcast_bsp_m(model, m, static_cast<std::uint32_t>(L), 7);
  ASSERT_TRUE(r.correct);
  EXPECT_LE(r.time, 3 * core::bounds::broadcast_bsp_m(p, m, L));
}

TEST(Broadcast, QsmGInformsEveryone) {
  const std::uint32_t p = 512;
  const double g = 8;
  const core::QsmG model(params(p, g, 64, 1));
  const auto r = algos::broadcast_qsm_g(model, static_cast<std::uint32_t>(g), 3);
  ASSERT_TRUE(r.correct);
  EXPECT_LE(r.time, 4 * core::bounds::broadcast_qsm_g(p, g));
}

TEST(Broadcast, QsmMWithinBound) {
  const std::uint32_t p = 1024, m = 32;
  const core::QsmM model(params(p, p / m, m, 1));
  const auto r = algos::broadcast_qsm_m(model, m, 11);
  ASSERT_TRUE(r.correct);
  EXPECT_LE(r.time, 4 * core::bounds::broadcast_qsm_m(p, m));
}

TEST(Broadcast, GlobalBeatsLocalAtMatchedBandwidth) {
  const std::uint32_t p = 4096, m = 64;
  const double g = p / m;  // 64
  const core::QsmG local(params(p, g, m, 1));
  const core::QsmM global(params(p, g, m, 1));
  const auto rl =
      algos::broadcast_qsm_g(local, static_cast<std::uint32_t>(g), 1);
  const auto rg = algos::broadcast_qsm_m(global, m, 1);
  ASSERT_TRUE(rl.correct && rg.correct);
  EXPECT_GT(rl.time, rg.time);
}

// ---- parity / summation ----------------------------------------------------

std::vector<engine::Word> random_inputs(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(1 << 20));
  return v;
}

TEST(Reduce, BspSumAndParity) {
  const std::uint32_t p = 256, m = 16;
  const auto inputs = random_inputs(p, 1);
  const core::BspM model(params(p, p / m, m, 4));
  for (auto op : {algos::ReduceOp::kSum, algos::ReduceOp::kXor}) {
    const auto r = algos::reduce_bsp(model, inputs, m, 4, op);
    EXPECT_TRUE(r.correct);
  }
}

TEST(Reduce, BspGFullTree) {
  const std::uint32_t p = 256;
  const auto inputs = random_inputs(p, 2);
  const core::BspG model(params(p, 4, 64, 16));
  const auto r = algos::reduce_bsp(model, inputs, p, 4, algos::ReduceOp::kSum);
  EXPECT_TRUE(r.correct);
}

TEST(Reduce, BspMBeatsBspG) {
  const std::uint32_t p = 1024, m = 32;
  const double g = p / m, L = 8;
  const auto inputs = random_inputs(p, 3);
  const core::BspM global(params(p, g, m, L));
  const core::BspG local(params(p, g, m, L));
  const auto rg = algos::reduce_bsp(global, inputs, m, static_cast<std::uint32_t>(L),
                                    algos::ReduceOp::kSum);
  const auto rl = algos::reduce_bsp(local, inputs, p,
                                    std::max(2u, static_cast<std::uint32_t>(L / g)),
                                    algos::ReduceOp::kSum);
  ASSERT_TRUE(rg.correct && rl.correct);
  EXPECT_GT(rl.time, rg.time);
}

TEST(Reduce, QsmSumMatchesReference) {
  const std::uint32_t p = 256, m = 16;
  const auto inputs = random_inputs(p, 4);
  const core::QsmM model(params(p, p / m, m, 1));
  const auto r = algos::reduce_qsm(model, inputs, m, 2, m, algos::ReduceOp::kSum);
  EXPECT_TRUE(r.correct);
  EXPECT_LE(r.time, 6 * core::bounds::reduce_qsm_m(p, m));
}

TEST(Reduce, QsmParitySmall) {
  const std::uint32_t p = 8;
  const auto inputs = random_inputs(p, 5);
  const core::QsmG model(params(p, 2, 4, 1));
  const auto r = algos::reduce_qsm(model, inputs, p, 2, 4, algos::ReduceOp::kXor);
  EXPECT_TRUE(r.correct);
}

// ---- list ranking ----------------------------------------------------------

TEST(ListRank, ReferenceIsSane) {
  // List 2 -> 0 -> 1: ranks 2,1,0... succ[2]=0, succ[0]=1, succ[1]=nil.
  const std::vector<std::uint32_t> succ{1, 3, 0};
  const auto rank = algos::rank_reference(succ);
  EXPECT_EQ(rank[2], 2u);
  EXPECT_EQ(rank[0], 1u);
  EXPECT_EQ(rank[1], 0u);
}

TEST(ListRank, RandomListSmall) {
  const auto succ = algos::random_list(64, 7);
  const core::QsmM model(params(64, 8, 8, 1));
  const auto r = algos::list_rank_qsm(model, succ, 8, 8);
  EXPECT_TRUE(r.correct);
}

TEST(ListRank, RandomListLarger) {
  const auto succ = algos::random_list(1024, 8);
  const std::uint32_t m = 32;
  const core::QsmM model(params(1024, 1024 / m, m, 1));
  const auto r = algos::list_rank_qsm(model, succ, m, m);
  EXPECT_TRUE(r.correct);
}

TEST(ListRank, SingletonAndPair) {
  {
    const std::vector<std::uint32_t> succ{1};
    const core::QsmM model(params(2, 1, 1, 1));
    EXPECT_TRUE(algos::list_rank_qsm(model, succ, 1, 1).correct);
  }
  {
    const std::vector<std::uint32_t> succ{1, 2};
    const core::QsmM model(params(2, 1, 1, 1));
    EXPECT_TRUE(algos::list_rank_qsm(model, succ, 1, 1).correct);
  }
}

TEST(ListRank, GlobalModelFasterThanLocal) {
  const std::uint32_t n = 512, m = 16;
  const double g = n / m;
  const auto succ = algos::random_list(n, 9);
  const core::QsmM global(params(n, g, m, 1));
  const core::QsmG local(params(n, g, m, 1));
  const auto rg = algos::list_rank_qsm(global, succ, m, m);
  const auto rl = algos::list_rank_qsm(local, succ, m, m);
  ASSERT_TRUE(rg.correct && rl.correct);
  EXPECT_GT(rl.time, rg.time);
}

// ---- sorting ----------------------------------------------------------------

TEST(Sort, SmallAndDegenerate) {
  const core::BspM model1(params(1, 1, 1, 1));
  EXPECT_TRUE(algos::sample_sort_bsp(model1, {3, 1, 2}, 1).correct);

  const core::BspM model4(params(4, 2, 2, 1));
  EXPECT_TRUE(algos::sample_sort_bsp(model4, random_inputs(64, 10), 2).correct);
}

TEST(Sort, DuplicateKeys) {
  const core::BspM model(params(16, 4, 4, 2));
  std::vector<engine::Word> keys(256, 7);
  keys[3] = 1;
  keys[200] = 9;
  EXPECT_TRUE(algos::sample_sort_bsp(model, keys, 4).correct);
}

TEST(Sort, LargerInstanceWithinBoundShape) {
  // Regime m^2 lg^2 n << n so the splitter machinery stays under n/m.
  const std::uint32_t p = 256, m = 8;
  const double L = 4;
  const auto keys = random_inputs(16384, 11);
  const core::BspM model(params(p, p / m, m, L));
  const auto r = algos::sample_sort_bsp(model, keys, m);
  ASSERT_TRUE(r.correct);
  // Three balanced n-relations, each ~ n/m under staggering, plus local
  // sort work ~ (n/S) lg: stay within a small constant of n/m.
  EXPECT_LE(r.time, 12 * core::bounds::sort_bsp_m(keys.size(), m, L));
}

TEST(Sort, BspGPaysGap) {
  const std::uint32_t p = 256, m = 16;
  const double g = p / m;
  const auto keys = random_inputs(4096, 12);
  const core::BspM global(params(p, g, m, 4));
  const core::BspG local(params(p, g, m, 4));
  const auto rg = algos::sample_sort_bsp(global, keys, m);
  const auto rl = algos::sample_sort_bsp(local, keys, m);
  ASSERT_TRUE(rg.correct && rl.correct);
  EXPECT_GT(rl.time, rg.time);
}

TEST(Sort, AlreadySortedAndReversed) {
  const core::BspM model(params(64, 4, 16, 2));
  std::vector<engine::Word> asc(1024), desc(1024);
  for (int i = 0; i < 1024; ++i) {
    asc[i] = i;
    desc[i] = 1024 - i;
  }
  EXPECT_TRUE(algos::sample_sort_bsp(model, asc, 16).correct);
  EXPECT_TRUE(algos::sample_sort_bsp(model, desc, 16).correct);
}

}  // namespace
