// Scenario: a shared-backbone cluster under adversarial traffic — the
// dynamic problem of Section 6.2.  A service mesh routes point-to-point
// messages whose arrival pattern is controlled by an adversary bounded by
// (alpha, beta, w).  We run the BSP(g) interval router and Algorithm B
// side by side and watch the queues.
//
//   ./examples/dynamic_network [--p=32] [--m=8] [--w=128] [--windows=240]
#include <iostream>

#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 32));
  const auto m = static_cast<std::uint32_t>(cli.get_int("m", 8));
  const auto w = static_cast<std::uint32_t>(cli.get_int("w", 128));
  const auto windows = static_cast<std::uint64_t>(cli.get_int("windows", 240));
  const double g = static_cast<double>(p) / m;

  // A bursty tenant: one service emits at half the window rate — far above
  // the 1/g per-processor budget — while total traffic stays below m/2.
  aqt::AqtParams prm{p, /*alpha=*/0.5 * m, /*beta=*/0.5, w};
  std::cout << "Dynamic routing, p=" << p << ", m=" << m << " (g=" << g
            << "), alpha=" << prm.alpha << ", beta=" << prm.beta
            << " (note beta >> 1/g = " << 1 / g << ")\n\n";

  auto adv1 = aqt::make_rotating_hotspot(prm);
  const auto local = aqt::run_bsp_g_dynamic(*adv1, g, windows, 4);
  auto adv2 = aqt::make_rotating_hotspot(prm);
  const auto global = aqt::run_algorithm_b(*adv2, m, 0.25, windows, 4,
                                           aqt::BatchPolicy::kUnbalancedSend);

  util::Table table({"router", "mean queue", "max queue", "final queue",
                     "tail slope", "verdict"});
  table.add_row({"BSP(g) interval router", util::Table::num(local.mean_queue),
                 util::Table::num(local.max_queue),
                 util::Table::num(local.final_queue),
                 util::Table::num(local.tail_slope),
                 local.stable ? "stable" : "UNSTABLE"});
  table.add_row({"Algorithm B on BSP(m)", util::Table::num(global.mean_queue),
                 util::Table::num(global.max_queue),
                 util::Table::num(global.final_queue),
                 util::Table::num(global.tail_slope),
                 global.stable ? "stable" : "UNSTABLE"});
  table.print(std::cout);

  std::cout << "\nQueue-length distribution under Algorithm B:\n";
  util::Histogram hist(0, global.max_queue + 1, 8);
  for (double q : global.queue_series) hist.add(q);
  std::cout << hist.render(40);

  std::cout << "\nQueue-length distribution under the BSP(g) router:\n";
  util::Histogram hist2(0, local.max_queue + 1, 8);
  for (double q : local.queue_series) hist2.add(q);
  std::cout << hist2.render(40);

  std::cout << "\nThe per-processor-limited router drowns (Theorem 6.5: "
               "unstable for beta > 1/g)\nwhile Algorithm B keeps the backlog "
               "flat (Theorem 6.7).\n";
  return 0;
}
