// Scenario: profiling a parallel program against a bandwidth model — the
// trace report in action.  Runs the sample sort pipeline with tracing on
// both members of a matched model pair and prints which cost term bound
// each phase, the diagnosis an algorithm designer acts on: c_m-bound
// means stagger better, h-bound means balance load, L-bound is the
// latency floor.
//
//   ./examples/cost_anatomy [--p=256] [--n=16384] [--m=8]
#include <iostream>

#include "core/model/models.hpp"
#include "core/trace_report.hpp"
#include "engine/machine.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"

using namespace pbw;

namespace {

/// Traced routing of one relation; returns the trace-bearing result.
engine::RunResult traced_route(const engine::CostModel& model,
                               const sched::Relation& rel,
                               const sched::SlotSchedule& schedule) {
  class Send final : public engine::SuperstepProgram {
   public:
    Send(const sched::Relation& rel, const sched::SlotSchedule& sched)
        : rel_(rel), sched_(sched) {}
    bool step(engine::ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      const auto& items = rel_.items(ctx.id());
      for (std::size_t k = 0; k < items.size(); ++k) {
        ctx.send(items[k].dst, 0, sched_.start[ctx.id()][k], items[k].length);
      }
      ctx.charge(static_cast<double>(items.size()));  // packing work
      return true;
    }

   private:
    const sched::Relation& rel_;
    const sched::SlotSchedule& sched_;
  } program(rel, schedule);
  engine::MachineOptions opts;
  opts.trace = true;
  engine::Machine machine(model, opts);
  return machine.run(program);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 256));
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 16384));
  const auto m = static_cast<std::uint32_t>(cli.get_int("m", 8));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 2)));

  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = 16;
  const core::BspG local(prm);
  const core::BspM global(prm);

  const auto rel = sched::zipf_relation(p, n, 1.1, rng);
  std::cout << "Routing a zipf(1.1) h-relation: n=" << rel.total_flits()
            << ", xbar=" << rel.max_sent() << ", p=" << p << ", m=" << m
            << " (g=" << prm.g << ")\n";

  // The model-driven analyze_trace overload asks the CostModel itself for
  // each superstep's components, so the attribution matches the charge by
  // construction (docs/OBSERVABILITY.md).
  std::cout << "\n-- " << local.name() << ", naive schedule --\n";
  const auto run_g = traced_route(local, rel, sched::naive_schedule(rel));
  std::cout << core::analyze_trace(run_g, local).render();

  std::cout << "\n-- " << global.name() << ", naive schedule --\n";
  const auto run_naive = traced_route(global, rel, sched::naive_schedule(rel));
  std::cout << core::analyze_trace(run_naive, global).render();

  std::cout << "\n-- " << global.name() << ", Unbalanced-Send --\n";
  const auto schedule = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                        rel.total_flits(), rng);
  const auto run_smart = traced_route(global, rel, schedule);
  std::cout << core::analyze_trace(run_smart, global).render();

  std::cout << "\nDiagnosis walkthrough: the BSP(g) run is gap-bound (only\n"
               "load balancing could help — and the skew forbids it); the\n"
               "naive BSP(m) run is aggregate-bound with an exponential\n"
               "overload surcharge; after Unbalanced-Send the cost drops to\n"
               "the h/aggregate floor the lower bound permits.\n";
  return 0;
}
