// Scenario: distributed matrix transposition via total exchange — the
// classic consumer of the all-to-all personalized primitive (Section 3
// lists matrix transposition and 2-D FFT as its applications).
//
// A B x B block matrix is distributed one block-row per processor; the
// transpose requires every processor to send one block (of `block` flits)
// to every other — a perfectly balanced total exchange.  We route it on
// BSP(g) and on BSP(m) with the offline schedule (the pattern is known in
// advance, so no randomness is needed) and with Unbalanced-Send (as an
// oblivious program would), and compare against the paper's bounds.
//
//   ./examples/matrix_transpose [--p=64] [--block=16]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 64));
  const auto block = static_cast<std::uint32_t>(cli.get_int("block", 16));
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));

  const auto prm = core::ModelParams::matched(p, /*g=*/8, /*L=*/8);
  const core::BspG local(prm);
  const core::BspM global(prm);

  // The transpose communication pattern: processor i sends its (i, j)
  // block of `block` flits to processor j, for all j != i.
  const auto rel = sched::total_exchange_relation(p, block);
  const std::uint64_t n = rel.total_flits();

  std::cout << "Block-matrix transpose as total exchange: p=" << p
            << ", block=" << block << " flits, n=" << n << " flits total\n\n";

  util::Table table({"machine / schedule", "time", "vs optimal", "note"});
  const double opt = core::bounds::routing_bsp_m_optimal(
      n, rel.max_sent(), rel.max_received(), prm.m, prm.L);

  const auto on_local = sched::route_relation(
      local, rel, sched::naive_schedule(rel), prm.m, prm.L);
  table.add_row({"BSP(g), any schedule", util::Table::num(on_local.send_time),
                 util::Table::num(on_local.send_time / opt),
                 "pays g * (p-1) * block"});

  const auto offline = sched::route_relation(
      global, rel, sched::offline_optimal_schedule(rel, prm.m), prm.m, prm.L);
  table.add_row({"BSP(m), offline schedule", util::Table::num(offline.send_time),
                 util::Table::num(offline.send_time / opt),
                 "pattern known in advance"});

  const auto online_sched = sched::long_message_schedule(rel, prm.m, 0.25, n, rng);
  const auto online = sched::route_relation(global, rel, online_sched, prm.m, prm.L);
  table.add_row({"BSP(m), Unbalanced-Send", util::Table::num(online.send_time),
                 util::Table::num(online.send_time / opt),
                 "oblivious, randomized"});
  table.print(std::cout);

  std::cout << "\nTotal exchange is *balanced* (h = n/p exactly), the one case"
            << "\nwhere the locally-limited bound g*h equals the global n/m"
            << "\nbound: the models agree here (ratio " << std::flush;
  std::cout << on_local.send_time / offline.send_time
            << "), and diverge only under imbalance — run"
               "\n./examples/skewed_join to see the other regime.\n";
  return 0;
}
