// Quickstart: define a matched pair of models (same aggregate bandwidth),
// write a tiny superstep program against the engine, and route one skewed
// h-relation with and without scheduling.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

using namespace pbw;

namespace {

/// A minimal SPMD program: every processor pings its neighbour and sums
/// what it hears back.  One program text runs unchanged on all models —
/// only the charging rule differs.
class PingProgram final : public engine::SuperstepProgram {
 public:
  explicit PingProgram(std::uint32_t p) : sums_(p, 0) {}
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() == 0) {
      ctx.send((ctx.id() + 1) % ctx.p(), ctx.id());
      return true;
    }
    for (const auto& msg : ctx.inbox()) sums_[ctx.id()] += msg.payload;
    return false;
  }
  std::vector<engine::Word> sums_;
};

}  // namespace

int main() {
  // A 64-processor machine with gap g = 8, i.e. aggregate bandwidth
  // m = p/g = 8 messages per time step, latency L = 4.
  const auto prm = core::ModelParams::matched(/*p=*/64, /*g=*/8, /*L=*/4);
  const core::BspG local(prm);                      // per-processor limit
  const core::BspM global(prm);                     // aggregate limit
  const core::SelfSchedulingBspM simple(prm);       // max(w, h, n/m, L)

  std::cout << "== one program, three charging rules ==\n";
  for (const engine::CostModel* model :
       std::initializer_list<const engine::CostModel*>{&local, &global, &simple}) {
    PingProgram prog(prm.p);
    engine::Machine machine(*model);
    const auto run = machine.run(prog);
    std::cout << "  " << model->name() << ": time " << run.total_time << " ("
              << run.supersteps << " supersteps, " << run.total_messages
              << " messages)\n";
  }

  // An unbalanced h-relation: one processor holds half the traffic.
  util::Xoshiro256 rng(7);
  const auto rel = sched::point_skew_relation(prm.p, 4096, 0.5, rng);
  std::cout << "\n== routing a skewed h-relation (n=" << rel.total_flits()
            << ", xbar=" << rel.max_sent() << ") ==\n";

  // On BSP(g), scheduling cannot help: the hot processor pays g * xbar.
  const auto on_local = sched::route_relation(
      local, rel, sched::naive_schedule(rel), prm.m, prm.L);
  std::cout << "  " << local.name() << " (any schedule):      "
            << on_local.send_time << "\n";

  // On BSP(m), the naive send melts down under the exponential penalty...
  const auto naive = sched::route_relation(
      global, rel, sched::naive_schedule(rel), prm.m, prm.L);
  std::cout << "  " << global.name() << " naive (slot 1):  " << naive.send_time
            << "  (peak m_t = " << naive.max_mt << ")\n";

  // ...while Unbalanced-Send (Theorem 6.2) lands within (1+eps) of the
  // offline optimum max(n/m, xbar, ybar).
  const auto sched = sched::unbalanced_send_schedule(rel, prm.m, 0.25,
                                                     rel.total_flits(), rng);
  const auto smart = sched::route_relation(global, rel, sched, prm.m, prm.L);
  std::cout << "  " << global.name() << " Unbalanced-Send: " << smart.send_time
            << "  (optimal " << smart.optimal << ", ratio " << smart.ratio
            << ", delivered=" << (smart.delivered ? "yes" : "no") << ")\n";
  return 0;
}
