// Scenario: redistributing the intermediate result of a skewed database
// join — one of the irregular applications Section 6 motivates ("skew in
// the amount of new values produced by the processors, e.g. an
// intermediate result of a join operation").
//
// Each processor holds a fragment of relation R and probes a replicated
// build side; popular keys produce many matches at few processors.  The
// output tuples must then be redistributed by hash for the next operator.
// We generate the match counts with a Zipf distribution, route the
// redistribution on BSP(g) vs BSP(m), and show the Theta(g) advantage the
// globally-limited model extracts from the skew.
//
//   ./examples/skewed_join [--p=128] [--tuples=32768] [--theta=1.1]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 128));
  const auto tuples = static_cast<std::uint64_t>(cli.get_int("tuples", 32768));
  const double theta = cli.get_double("theta", 1.1);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));

  const auto prm = core::ModelParams::matched(p, /*g=*/8, /*L=*/8);
  const core::BspG local(prm);
  const core::BspM global(prm);

  std::cout << "Skewed join redistribution: p=" << p << ", tuples=" << tuples
            << ", zipf theta=" << theta << ", g=" << prm.g << ", m=" << prm.m
            << "\n\n";

  util::Table table({"theta", "xbar", "xbar/(n/p)", "BSP(g) time",
                     "BSP(m) time", "speedup", "optimal", "ratio to opt"});
  for (double t : {0.0, 0.6, theta, 1.6}) {
    // Join output: tuple sources follow the key popularity skew.
    const auto rel = sched::zipf_relation(p, tuples, t, rng);
    const auto on_local = sched::route_relation(
        local, rel, sched::naive_schedule(rel), prm.m, prm.L);
    const auto schedule = sched::unbalanced_send_schedule(
        rel, prm.m, 0.25, rel.total_flits(), rng);
    const auto on_global =
        sched::route_relation(global, rel, schedule, prm.m, prm.L,
                              /*count_n=*/true);
    table.add_row(
        {util::Table::num(t), util::Table::integer(rel.max_sent()),
         util::Table::num(double(rel.max_sent()) * p / double(tuples)),
         util::Table::num(on_local.send_time),
         util::Table::num(on_global.total_time),
         util::Table::num(on_local.send_time / on_global.total_time),
         util::Table::num(on_global.optimal), util::Table::num(on_global.ratio)});
  }
  table.print(std::cout);
  std::cout << "\nThe speedup column climbs toward g = " << prm.g
            << " as the key distribution sharpens: the aggregate-bandwidth\n"
               "model lets idle processors' unused bandwidth carry the hot\n"
               "processor's output, which no per-processor-limited machine\n"
               "can do.\n";
  return 0;
}
