// Scenario: processors on a shared broadcast bus — the Section 5
// motivation for concurrent read under a global bandwidth limit ("a set
// of processors that communicate over a shared broadcast bus with
// insufficient bandwidth to handle communication by every processor at
// every clock cycle").
//
// A bus is concurrently readable (every listener hears a transmission),
// but its bandwidth is aggregate: m words per cycle cross it, total.
// We compare the two design points the paper contrasts:
//   - CR PRAM(m):  processors snoop the bus freely (concurrent read)
//   - ER PRAM(m):  a switched fabric where each word reaches one reader
// on the Leader Recognition task (arbitration: who owns the bus?), and
// then show the Theorem 5.1 machinery that lets a QSM(m) machine — no
// concurrent reads — simulate the snooping bus with O(p/m) slowdown.
//
//   ./examples/bus_network [--p=1024]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "pram/cr_sim.hpp"
#include "pram/leader.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 1024));
  const auto m = static_cast<std::uint32_t>(
      cli.get_int("m", static_cast<std::int64_t>(std::sqrt(p) / 2)));

  std::cout << "Shared bus, " << p << " processors, aggregate bandwidth " << m
            << " words/cycle\n\n";

  std::cout << "== Bus arbitration as Leader Recognition ==\n";
  util::Table t1({"fabric", "cycles", "note"});
  const auto cr = pram::leader_concurrent_read(p, m, p / 3);
  const auto er = pram::leader_exclusive_read(p, m, p / 3);
  t1.add_row({"snooping bus (CR)", util::Table::integer(static_cast<long long>(cr.steps)),
              "one announcement, everyone hears it"});
  t1.add_row({"switched fabric (ER)",
              util::Table::integer(static_cast<long long>(er.steps)),
              "the winner's id must be relayed point-to-point"});
  t1.print(std::cout);
  std::cout << "Gap: " << er.time / cr.time << "x  (paper separation formula: "
            << core::bounds::er_cr_separation(p, m) << ")\n\n";

  std::cout << "== Simulating the snooping bus without concurrent reads ==\n";
  // A hot cycle: every processor wants the word the bus master just put
  // in shared cell 0 (plus some background traffic on the other cells).
  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = 1;
  const core::QsmM model(prm);
  std::vector<engine::Word> bus_cells(m);
  for (std::uint32_t a = 0; a < m; ++a) bus_cells[a] = 0x1000 + a;
  std::vector<std::uint32_t> wanted(p, 0);
  for (std::uint32_t i = p / 2; i < p; ++i) wanted[i] = i % m;  // background

  const auto sim = pram::simulate_cr_step(model, bus_cells, wanted, m);
  util::Table t2({"metric", "value"});
  t2.add_row({"simulated cycles (QSM(m) time)", util::Table::num(sim.time)});
  t2.add_row({"paper bound O(p/m)",
              util::Table::num(core::bounds::cr_step_sim_qsm_m(p, m))});
  t2.add_row({"direct memory reads avoided",
              util::Table::integer(static_cast<long long>(p - sim.direct_reads))});
  t2.add_row({"all processors correct", sim.correct ? "yes" : "NO"});
  t2.print(std::cout);

  std::cout << "\nTheorem 5.1 in action: sorting the requests lets a machine\n"
               "with exclusive reads serve a fully snooped cycle in O(p/m),\n"
               "so losing the bus's concurrent read costs only the bandwidth\n"
               "you already didn't have.\n";
  return 0;
}
