// Scenario: choosing a machine model for your algorithm.  Runs the
// Section 4 algorithm suite (one-to-all, broadcast, summation, list
// ranking, sorting) across all four models for user-supplied parameters
// and prints a what-costs-what matrix — the practical takeaway of the
// paper's conclusion: "use models that impose the type of restriction on
// bandwidth that most accurately reflects the machine in question."
//
//   ./examples/model_explorer [--p=512] [--g=8] [--L=8] [--seed=1]
#include <iostream>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "core/model/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 512));
  const double g = cli.get_double("g", 8);
  const double L = cli.get_double("L", 8);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto prm = core::ModelParams::matched(p, g, L);

  const core::BspG bsp_g(prm);
  const core::BspM bsp_m(prm);
  const core::QsmG qsm_g(prm);
  const core::QsmM qsm_m(prm);

  std::cout << "Model explorer: p=" << p << ", g=" << g << ", m=" << prm.m
            << ", L=" << L << " (matched aggregate bandwidth p/g = m)\n\n";

  util::Table table({"algorithm", "BSP(g)", "BSP(m)", "QSM(g)", "QSM(m)"});

  {
    const auto a = algos::one_to_all_bsp(bsp_g);
    const auto b = algos::one_to_all_bsp(bsp_m);
    const auto c = algos::one_to_all_qsm(qsm_g, prm.m);
    const auto d = algos::one_to_all_qsm(qsm_m, prm.m);
    table.add_row({"one-to-all", util::Table::num(a.time), util::Table::num(b.time),
                   util::Table::num(c.time), util::Table::num(d.time)});
  }
  {
    const auto arity = std::max(1u, static_cast<std::uint32_t>(L / g));
    const auto a = algos::broadcast_bsp_tree(bsp_g, arity, 9);
    const auto b = algos::broadcast_bsp_m(bsp_m, prm.m,
                                          static_cast<std::uint32_t>(L), 9);
    const auto c = algos::broadcast_qsm_g(
        qsm_g, std::max(2u, static_cast<std::uint32_t>(g)), 9);
    const auto d = algos::broadcast_qsm_m(qsm_m, prm.m, 9);
    table.add_row({"broadcast", util::Table::num(a.time), util::Table::num(b.time),
                   util::Table::num(c.time), util::Table::num(d.time)});
  }
  {
    util::Xoshiro256 rng(seed);
    std::vector<engine::Word> inputs(p);
    for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(1000));
    const auto arity_g = std::max(2u, static_cast<std::uint32_t>(L / g));
    const auto a = algos::reduce_bsp(bsp_g, inputs, p, arity_g, algos::ReduceOp::kSum);
    const auto b = algos::reduce_bsp(bsp_m, inputs, prm.m,
                                     static_cast<std::uint32_t>(L),
                                     algos::ReduceOp::kSum);
    const auto c = algos::reduce_qsm(qsm_g, inputs, p, 2, prm.m, algos::ReduceOp::kSum);
    const auto d =
        algos::reduce_qsm(qsm_m, inputs, prm.m, 2, prm.m, algos::ReduceOp::kSum);
    table.add_row({"summation", util::Table::num(a.time), util::Table::num(b.time),
                   util::Table::num(c.time), util::Table::num(d.time)});
  }
  {
    const auto succ = algos::random_list(p, seed + 1);
    const auto c = algos::list_rank_qsm(qsm_g, succ, prm.m, prm.m);
    const auto d = algos::list_rank_qsm(qsm_m, succ, prm.m, prm.m);
    table.add_row({"list ranking", "-", "-", util::Table::num(c.time),
                   util::Table::num(d.time)});
  }
  {
    util::Xoshiro256 rng(seed + 2);
    std::vector<engine::Word> keys(p);
    for (auto& x : keys) x = static_cast<engine::Word>(rng.below(1 << 20));
    const auto a = algos::sample_sort_bsp(bsp_g, keys, prm.m);
    const auto b = algos::sample_sort_bsp(bsp_m, keys, prm.m);
    table.add_row({"sorting", util::Table::num(a.time), util::Table::num(b.time),
                   "-", "-"});
  }
  table.print(std::cout);
  std::cout << "\nColumns use the same algorithm text per family; only the\n"
               "charging rule changes.  If your interconnect bottleneck is the\n"
               "bisection (stealable bandwidth), the (m)-columns predict your\n"
               "machine; if it is the NIC, the (g)-columns do.\n";
  return 0;
}
