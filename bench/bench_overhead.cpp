// E9 — Section 6.1, startup-overhead variant: a gap of o slots before each
// message (LogP-style overhead) inflates the schedule to
// (1+eps)(1 + o/lbar) n/m + lhat + o.
//
//   ./bench_overhead [--p=128] [--m=16] [--messages=1024] [--trials=5]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/model/models.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags =
      util::parse_model_flags(cli, {.p = 128, .m = 16, .trials = 5});
  const auto p = flags.p;
  const auto m = flags.m;
  const auto messages = static_cast<std::uint64_t>(cli.get_int("messages", 1024));
  const int trials = flags.trials;
  const double eps = cli.get_double("eps", 0.25);
  util::Xoshiro256 rng(flags.seed);

  const auto rel = sched::variable_length_relation(p, messages, 8, 0.1, rng);
  const std::uint64_t n = rel.total_flits();
  const double lbar = rel.mean_length();

  util::print_banner(std::cout,
                     "Startup overhead o per message (p=" + std::to_string(p) +
                         ", m=" + std::to_string(m) + ", lbar=" +
                         util::Table::num(lbar) + ")");
  util::Table table({"o", "makespan (mean)", "formula bound",
                     "within", "network limit ok"});
  for (std::uint32_t o : {0u, 1u, 4u, 16u}) {
    std::vector<double> spans;
    bool ok = true;
    for (int t = 0; t < trials; ++t) {
      const auto s = sched::overhead_schedule(rel, o, m, eps, rng);
      sched::validate_schedule(rel, s);
      const auto cost =
          sched::evaluate_schedule(rel, s, m, core::Penalty::kExponential, 1);
      // Makespan includes the trailing overhead of the last message.
      spans.push_back(static_cast<double>(cost.slots_used));
      ok &= cost.max_mt <= 2 * m;
    }
    // The theorem's window term, maxed with the inevitable per-processor
    // occupancy: a processor sending k messages of total length x is busy
    // x + k*o slots no matter the schedule.
    double xbar_inflated = 0;
    for (std::uint32_t src = 0; src < p; ++src) {
      xbar_inflated = std::max(
          xbar_inflated, double(rel.sent_by(src)) +
                             double(o) * double(rel.items(src).size()));
    }
    const double bound =
        std::max((1 + eps) * (1 + double(o) / lbar) * double(n) / m +
                     rel.max_length() + o,
                 xbar_inflated);
    const double mean = util::summarize(spans).mean;
    table.add_row({util::Table::integer(o), util::Table::num(mean),
                   util::Table::num(bound),
                   mean <= 1.3 * bound ? "yes" : "NO", ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the makespan grows linearly with o/lbar, as\n"
               "the (1+eps)(1+o/lbar)n/m + lhat + o bound prescribes.\n";
  return 0;
}
