// E14 — wall-clock micro-benchmarks of the simulation engine itself
// (google-benchmark).  These measure the simulator, not the models: how
// fast supersteps, message routing and shared-memory phases execute on
// the host.
#include <benchmark/benchmark.h>

#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "sched/runner.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;

core::ModelParams params(std::uint32_t p, std::uint32_t m) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = 4;
  return prm;
}

/// Empty supersteps: pure engine overhead per (proc, superstep).
class SpinProgram final : public engine::SuperstepProgram {
 public:
  explicit SpinProgram(std::uint64_t rounds) : rounds_(rounds) {}
  bool step(engine::ProcContext& ctx) override {
    return ctx.superstep() + 1 < rounds_;
  }

 private:
  std::uint64_t rounds_;
};

void BM_EngineSuperstepOverhead(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const core::BspM model(params(p, std::max(1u, p / 8)));
  for (auto _ : state) {
    SpinProgram prog(64);
    engine::Machine machine(model);
    benchmark::DoNotOptimize(machine.run(prog));
  }
  state.SetItemsProcessed(state.iterations() * 64 * p);
}
BENCHMARK(BM_EngineSuperstepOverhead)->Arg(64)->Arg(512)->Arg(4096);

void BM_RouteRelation(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t m = std::max(1u, p / 8);
  const core::BspM model(params(p, m));
  util::Xoshiro256 rng(1);
  const auto rel = sched::balanced_relation(p, 32, rng);
  for (auto _ : state) {
    const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                       rel.total_flits(), rng);
    benchmark::DoNotOptimize(sched::route_relation(model, rel, sched, m, 4));
  }
  state.SetItemsProcessed(state.iterations() * rel.total_flits());
}
BENCHMARK(BM_RouteRelation)->Arg(64)->Arg(256)->Arg(1024);

void BM_ScheduleEvaluationFastPath(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t m = std::max(1u, p / 8);
  util::Xoshiro256 rng(1);
  const auto rel = sched::balanced_relation(p, 32, rng);
  const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                     rel.total_flits(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::evaluate_schedule(
        rel, sched, m, core::Penalty::kExponential, 4));
  }
  state.SetItemsProcessed(state.iterations() * rel.total_flits());
}
BENCHMARK(BM_ScheduleEvaluationFastPath)->Arg(256)->Arg(2048);

void BM_QsmSharedMemoryPhase(benchmark::State& state) {
  const auto p = static_cast<std::uint32_t>(state.range(0));
  const core::QsmM model(params(p, std::max(1u, p / 8)));

  class ReadAll final : public engine::SuperstepProgram {
   public:
    void setup(engine::Machine& m) override { m.resize_shared(2ull * m.p()); }
    bool step(engine::ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      // Read a neighbour's cell, write into a disjoint region (QSM forbids
      // read+write races on one location within a phase).
      ctx.read((ctx.id() + 1) % ctx.p());
      ctx.write(static_cast<engine::Addr>(ctx.p()) + ctx.id(), 1, 2);
      return true;
    }
  };

  for (auto _ : state) {
    ReadAll prog;
    engine::Machine machine(model);
    benchmark::DoNotOptimize(machine.run(prog));
  }
  state.SetItemsProcessed(state.iterations() * p);
}
BENCHMARK(BM_QsmSharedMemoryPhase)->Arg(256)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
