// E5 — Theorem 6.2: Unbalanced-Send schedules an unknown, arbitrarily
// unbalanced h-relation within (1+eps) of the offline optimum
// max(n/m, xbar, ybar) plus tau, while the BSP(g) pays g*max(xbar, ybar).
// Sweeps workload skew and eps.
//
//   ./bench_unbalanced_send [--p=256] [--m=32] [--n=16384] [--L=8]
//                           [--trials=5] [--seed=1]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags =
      util::parse_model_flags(cli, {.p = 256, .m = 32, .L = 8, .trials = 5});
  const auto p = flags.p;
  const auto m = flags.m;
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 16384));
  const double L = flags.L;
  const int trials = flags.trials;
  util::Xoshiro256 rng(flags.seed);

  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = L;
  const core::BspM bsp_m(prm, core::Penalty::kExponential);

  util::print_banner(
      std::cout, "Theorem 6.2: Unbalanced-Send vs optimum (p=" +
                     std::to_string(p) + ", m=" + std::to_string(m) + ", n=" +
                     std::to_string(n) + ", exponential penalty)");
  util::Table table({"skew (hot frac)", "xbar", "optimal", "UnbSend (mean)",
                     "ratio", "ratio+tau", "BSP(g) g*h", "g-adv", "limit ok"});
  for (double hot : {0.0, 0.1, 0.3, 0.6, 0.9}) {
    const auto rel = sched::point_skew_relation(p, n, hot, rng);
    const double opt = core::bounds::routing_bsp_m_optimal(
        rel.total_flits(), rel.max_sent(), rel.max_received(), m, L);
    std::vector<double> times;
    bool all_within = true;
    sched::RoutingResult last{};
    for (int t = 0; t < trials; ++t) {
      const auto sched = sched::unbalanced_send_schedule(rel, m, 0.25,
                                                         rel.total_flits(), rng);
      last = sched::route_relation(bsp_m, rel, sched, m, L, /*count_n=*/t == 0);
      times.push_back(last.send_time);
      all_within &= last.within_limit && last.delivered;
    }
    const auto s = util::summarize(times);
    const double bspg = core::bounds::routing_bsp_g(
        rel.max_sent(), rel.max_received(), prm.g, L);
    table.add_row(
        {util::Table::num(hot), util::Table::integer(rel.max_sent()),
         util::Table::num(opt), util::Table::num(s.mean),
         util::Table::num(s.mean / opt),
         util::Table::num((s.mean + last.count_time) / opt),
         util::Table::num(bspg), util::Table::num(bspg / s.mean),
         all_within ? "yes" : "NO"});
  }
  table.print(std::cout);

  util::print_banner(std::cout, "eps sweep at hot=0.5 (ratio -> 1+eps)");
  util::Table t2({"eps", "ratio (mean over trials)", "P[slot overload]",
                  "Chernoff union bound"});
  const auto rel = sched::point_skew_relation(p, n, 0.5, rng);
  const double opt = core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, L);
  for (double eps : {0.1, 0.25, 0.5, 1.0}) {
    std::vector<double> times;
    int overloads = 0;
    for (int t = 0; t < 4 * trials; ++t) {
      const auto sched =
          sched::unbalanced_send_schedule(rel, m, eps, rel.total_flits(), rng);
      const auto cost =
          sched::evaluate_schedule(rel, sched, m, core::Penalty::kExponential, L);
      times.push_back(cost.total);
      overloads += !cost.within_limit;
    }
    t2.add_row({util::Table::num(eps),
                util::Table::num(util::summarize(times).mean / opt),
                util::Table::num(double(overloads) / (4 * trials)),
                util::Table::num(core::bounds::unbalanced_send_failure_prob(
                    rel.total_flits(), m, eps))});
  }
  t2.print(std::cout);
  std::cout << "\nShape check: the scheduled send stays within (1+eps) of the\n"
               "offline optimum; the BSP(g) advantage column approaches g as\n"
               "skew grows (h >> n/p), the regime the paper highlights.\n";
  return 0;
}
