// Ablation — list ranking on the QSM models: scaling of the splice-
// contraction algorithm against the O(n/m + lg n) profile, the collector-
// count ablation, and the QSM(g) vs QSM(m) gap (Table 1 row 4).
//
//   ./bench_list_ranking [--seed=1]
#include <iostream>

#include "algos/list_ranking.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "Ablation — QSM list ranking: splice-contraction scaling vs O(n/m + lg n), collector ablation, QSM(g) vs QSM(m)",
      {{"seed=<n>", "RNG seed (default 1)"},
       {"help", "show this help and exit"}});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  util::print_banner(std::cout, "List ranking scaling on QSM(m) (fixed m = 32)");
  util::Table table({"n", "m", "measured", "n/m + lg n", "ratio", "correct"});
  for (std::uint32_t n : {512u, 2048u, 8192u}) {
    const std::uint32_t m = 32;
    core::ModelParams prm;
    prm.p = n;
    prm.g = static_cast<double>(n) / m;
    prm.m = m;
    prm.L = 1;
    const core::QsmM model(prm);
    const auto succ = algos::random_list(n, seed + n);
    const auto r = algos::list_rank_qsm(model, succ, m, m);
    const double profile = double(n) / m + core::bounds::lg(n);
    table.add_row({util::Table::integer(n), util::Table::integer(m),
                   util::Table::num(r.time), util::Table::num(profile),
                   util::Table::num(r.time / profile),
                   r.correct ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "(A flat ratio column is the O(n/m + lg n) claim; the constant\n"
               "covers ~7 shared-memory requests per live node per round and\n"
               "the 6 lg n contraction-round safety margin.)\n";

  util::print_banner(std::cout, "Collector ablation at n = 2048 on QSM(m=128)");
  util::Table t2({"collectors", "measured", "correct"});
  {
    core::ModelParams prm;
    prm.p = 2048;
    prm.g = 16;
    prm.m = 128;
    prm.L = 1;
    const core::QsmM model(prm);
    const auto succ = algos::random_list(2048, seed + 7);
    for (std::uint32_t c : {16u, 64u, 128u, 512u}) {
      const auto r = algos::list_rank_qsm(model, succ, c, 128);
      t2.add_row({util::Table::integer(c), util::Table::num(r.time),
                  r.correct ? "yes" : "NO"});
    }
  }
  t2.print(std::cout);
  std::cout << "(Too few collectors are work-bound at n/c per round; more than\n"
               "m collectors cannot help — the bandwidth term c_m is the floor.)\n";

  util::print_banner(std::cout, "QSM(g) vs QSM(m), matched bandwidth (Table 1 row 4)");
  util::Table t3({"n", "g", "QSM(g)", "QSM(m)", "separation"});
  for (std::uint32_t n : {512u, 2048u}) {
    for (double g : {8.0, 32.0}) {
      const auto m = static_cast<std::uint32_t>(n / g);
      core::ModelParams prm;
      prm.p = n;
      prm.g = g;
      prm.m = m;
      prm.L = 1;
      const core::QsmG local(prm);
      const core::QsmM global(prm);
      const auto succ = algos::random_list(n, seed + n + static_cast<std::uint64_t>(g));
      const auto rl = algos::list_rank_qsm(local, succ, m, m);
      const auto rg = algos::list_rank_qsm(global, succ, m, m);
      t3.add_row({util::Table::integer(n), util::Table::num(g),
                  util::Table::num(rl.time), util::Table::num(rg.time),
                  util::Table::num(rl.time / rg.time)});
    }
  }
  t3.print(std::cout);
  std::cout << "\nShape check: the separation tracks Theta(g) — the same\n"
               "requests cost g x more under the per-processor limit.\n";
  return 0;
}
