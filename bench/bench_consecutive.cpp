// E6 — Theorem 6.3: Unbalanced-Consecutive-Send, for processors that must
// transmit all their flits in consecutive slots; pays an additive xbar'
// (max light-processor load) over the plain bound.
//
//   ./bench_consecutive [--p=256] [--m=32] [--n=16384] [--trials=5]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags = util::parse_model_flags(cli, {.p = 256, .m = 32, .trials = 5});
  const auto p = flags.p;
  const auto m = flags.m;
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 16384));
  const int trials = flags.trials;
  const double eps = cli.get_double("eps", 0.25);
  util::Xoshiro256 rng(flags.seed);

  util::print_banner(std::cout,
                     "Theorem 6.3: Consecutive-Send (p=" + std::to_string(p) +
                         ", m=" + std::to_string(m) + ", eps=" +
                         util::Table::num(eps) + ")");
  util::Table table({"skew", "optimal", "plain UnbSend", "Consecutive",
                     "Thm 6.3 bound", "within", "limit ok"});
  for (double hot : {0.0, 0.2, 0.5, 0.9}) {
    const auto rel = sched::point_skew_relation(p, n, hot, rng);
    const std::uint64_t nn = rel.total_flits();
    const double opt = core::bounds::routing_bsp_m_optimal(
        nn, rel.max_sent(), rel.max_received(), m, 1);
    const double window = std::ceil((1 + eps) * double(nn) / m);
    const auto xbar_small = rel.max_sent_below(window);
    const double bound =
        std::max({window + double(xbar_small), double(rel.max_sent()),
                  double(rel.max_received())});

    std::vector<double> plain_t, consec_t;
    bool ok = true;
    for (int t = 0; t < trials; ++t) {
      const auto s1 = sched::unbalanced_send_schedule(rel, m, eps, nn, rng);
      plain_t.push_back(
          sched::evaluate_schedule(rel, s1, m, core::Penalty::kExponential, 1)
              .total);
      const auto s2 = sched::consecutive_send_schedule(rel, m, eps, nn, rng);
      const auto c2 =
          sched::evaluate_schedule(rel, s2, m, core::Penalty::kExponential, 1);
      consec_t.push_back(c2.total);
      ok &= c2.max_mt <= 2 * m;  // rare overloads stay mild
      sched::validate_schedule(rel, s2);
    }
    const double cmean = util::summarize(consec_t).mean;
    table.add_row({util::Table::num(hot), util::Table::num(opt),
                   util::Table::num(util::summarize(plain_t).mean),
                   util::Table::num(cmean), util::Table::num(bound),
                   cmean <= 1.3 * bound ? "yes" : "NO", ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: Consecutive-Send tracks the plain algorithm up\n"
               "to the additive xbar' the theorem charges for consecutiveness.\n";
  return 0;
}
