// E1 — Table 1: separation results between locally-limited and
// globally-limited models for one-to-all personalized communication,
// broadcasting, parity/summation, list ranking and sorting (n = p,
// m = p/g).  For each problem the measured model time of our algorithm is
// printed next to the paper's bound formula and the measured separation
// next to the predicted Theta.
//
//   ./bench_table1 [--p=1024] [--g=16] [--L=16] [--seed=1] [--threads=1]
//                  [--trace=<file>] [--trace-format=jsonl|chrome|both]
#include <iostream>
#include <tuple>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace pbw;
namespace bounds = core::bounds;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

std::vector<engine::Word> random_inputs(std::uint32_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(1 << 20));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags = util::parse_model_flags(cli, {.p = 1024, .g = 16, .L = 16});
  const auto [p, g, m, L] = std::tuple{flags.p, flags.g, flags.m, flags.L};
  const std::uint64_t seed = flags.seed;
  const auto prm = params(p, g, m, L);
  const std::uint32_t n = p;  // Table 1 is stated for n = p
  engine::MachineOptions mo;
  mo.seed = flags.seed;
  mo.threads = flags.threads;

  const core::BspG bsp_g(prm);
  const core::BspM bsp_m(prm);
  const core::QsmG qsm_g(prm);
  const core::QsmM qsm_m(prm);

  util::print_banner(std::cout, "Table 1 reproduction (n = p = " +
                                    std::to_string(p) + ", g = " +
                                    util::Table::num(g) + ", m = " +
                                    std::to_string(m) + ", L = " +
                                    util::Table::num(L) + ")");

  util::Table table({"problem", "model", "measured", "paper bound", "ok",
                     "separation (meas)", "separation (paper)"});
  auto row = [&](const std::string& problem, const std::string& model,
                 double measured, double bound, bool ok, double sep_meas,
                 double sep_paper) {
    table.add_row({problem, model, util::Table::num(measured),
                   util::Table::num(bound), ok ? "yes" : "NO",
                   sep_meas > 0 ? util::Table::num(sep_meas) : "",
                   sep_paper > 0 ? util::Table::num(sep_paper) : ""});
  };

  // ---- one-to-all personalized communication ----
  {
    const auto rg = algos::one_to_all_bsp(bsp_g, mo);
    const auto rm = algos::one_to_all_bsp(bsp_m, mo);
    row("one-to-all", bsp_g.name(), rg.time,
        bounds::one_to_all_local(p, g, L, true), rg.correct, 0, 0);
    row("one-to-all", bsp_m.name(), rm.time,
        bounds::one_to_all_global(p, L, true), rm.correct, rg.time / rm.time, g);
    const auto qg = algos::one_to_all_qsm(qsm_g, m, mo);
    const auto qm = algos::one_to_all_qsm(qsm_m, m, mo);
    row("one-to-all", qsm_g.name(), qg.time,
        bounds::one_to_all_local(p, g, L, false), qg.correct, 0, 0);
    row("one-to-all", qsm_m.name(), qm.time,
        bounds::one_to_all_global(p, L, false), qm.correct, qg.time / qm.time, g);
  }

  // ---- broadcasting ----
  {
    const auto arity = std::max(1u, static_cast<std::uint32_t>(L / g));
    const auto rg = algos::broadcast_bsp_tree(bsp_g, arity, 7, mo);
    const auto rm =
        algos::broadcast_bsp_m(bsp_m, m, static_cast<std::uint32_t>(L), 7, mo);
    row("broadcast", bsp_g.name(), rg.time, bounds::broadcast_bsp_g(p, g, L),
        rg.correct, 0, 0);
    row("broadcast", bsp_m.name(), rm.time, bounds::broadcast_bsp_m(p, m, L),
        rm.correct, rg.time / rm.time,
        bounds::broadcast_bsp_g(p, g, L) / bounds::broadcast_bsp_m(p, m, L));
    const auto qg =
        algos::broadcast_qsm_g(qsm_g, std::max(2u, static_cast<std::uint32_t>(g)), 7, mo);
    const auto qm = algos::broadcast_qsm_m(qsm_m, m, 7, mo);
    row("broadcast", qsm_g.name(), qg.time, bounds::broadcast_qsm_g(p, g),
        qg.correct, 0, 0);
    row("broadcast", qsm_m.name(), qm.time, bounds::broadcast_qsm_m(p, m),
        qm.correct, qg.time / qm.time, bounds::lg(p) / bounds::lg(g));
  }

  // ---- parity / summation ----
  {
    const auto inputs = random_inputs(n, seed);
    const auto arity_g = std::max(2u, static_cast<std::uint32_t>(L / g));
    const auto rg =
        algos::reduce_bsp(bsp_g, inputs, p, arity_g, algos::ReduceOp::kSum, mo);
    const auto rm = algos::reduce_bsp(bsp_m, inputs, m,
                                      static_cast<std::uint32_t>(L),
                                      algos::ReduceOp::kSum, mo);
    row("summation", bsp_g.name(), rg.time, bounds::reduce_bsp_g(n, g, L),
        rg.correct, 0, 0);
    row("summation", bsp_m.name(), rm.time, bounds::reduce_bsp_m(n, m, L),
        rm.correct, rg.time / rm.time,
        bounds::reduce_bsp_g(n, g, L) / bounds::reduce_bsp_m(n, m, L));
    const auto qg = algos::reduce_qsm(qsm_g, inputs, p, 2, m, algos::ReduceOp::kXor, mo);
    const auto qm = algos::reduce_qsm(qsm_m, inputs, m, 2, m, algos::ReduceOp::kXor, mo);
    row("parity", qsm_g.name(), qg.time, bounds::reduce_qsm_g_lower(n, g),
        qg.correct, 0, 0);
    row("parity", qsm_m.name(), qm.time, bounds::reduce_qsm_m(n, m), qm.correct,
        qg.time / qm.time,
        bounds::reduce_qsm_g_lower(n, g) / bounds::reduce_qsm_m(n, m));
  }

  // ---- list ranking ----
  {
    const auto succ = algos::random_list(n, seed + 1);
    const auto rg = algos::list_rank_qsm(qsm_g, succ, m, m, mo);
    const auto rm = algos::list_rank_qsm(qsm_m, succ, m, m, mo);
    row("list ranking", qsm_g.name(), rg.time,
        bounds::list_rank_local_lower(n, g, L, false), rg.correct, 0, 0);
    row("list ranking", qsm_m.name(), rm.time, bounds::list_rank_qsm_m(n, m),
        rm.correct, rg.time / rm.time,
        bounds::list_rank_local_lower(n, g, L, false) /
            bounds::list_rank_qsm_m(n, m));
  }

  // ---- sorting ----
  {
    const auto keys = random_inputs(n, seed + 2);
    const auto rg = algos::sample_sort_bsp(bsp_g, keys, m, 4, mo);
    const auto rm = algos::sample_sort_bsp(bsp_m, keys, m, 4, mo);
    row("sorting", bsp_g.name(), rg.time, bounds::sort_local_lower(n, g, L, true),
        rg.correct, 0, 0);
    row("sorting", bsp_m.name(), rm.time, bounds::sort_bsp_m(n, m, L), rm.correct,
        rg.time / rm.time,
        bounds::sort_local_lower(n, g, L, true) / bounds::sort_bsp_m(n, m, L));
  }

  table.print(std::cout);
  std::cout << "\nNote: 'paper bound' columns are Theta() formulas with the"
               "\nconstant dropped; at n = p the hidden constants are large for"
               "\nlist ranking (contraction rounds) and sorting (splitter"
               "\nexchange), so read the *separation* columns — the local/global"
               "\nratio — which is what Table 1 asserts.  bench_unbalanced_send"
               "\nand bench_concurrent_read probe the absolute constants in the"
               "\nregimes where the paper's Theta() is achievable.\n";
  std::cout << "\nReading: 'measured' is simulated model time of our algorithm;"
               "\n'paper bound' is the Table 1 formula (upper bound for the m-"
               "\nmodels, lower bound for the g-models).  'separation (meas)' ="
               "\nlocal time / global time on the matched-bandwidth pair; the"
               "\npaper predicts the Theta in the last column.\n";
  return 0;
}
