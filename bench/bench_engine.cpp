// E15 — merge-phase throughput of the superstep engine, recorded as JSON.
//
// Replays one fixed message+shared-memory relation per superstep and
// measures the wall-clock cost of Phase 2 (routing, slot accounting,
// contention, write application) three ways:
//
//   * legacy     — an inline replica of the pre-overhaul serial merge
//                  (fresh per-superstep queue allocation, unordered_map
//                  contention tally) fed the same per-source buffers;
//   * engine t=1 — the sharded merge on one host thread, timed via the
//                  MachineOptions::profile counters;
//   * engine t=hw — the sharded merge at hardware concurrency.
//
// Emits one JSON document on stdout (or --out=FILE) so campaign tooling
// can diff merge throughput across revisions.  Items = flits + shared
// requests; mitems_per_s is millions of merged items per second.
//
//   ./bench_engine [--supersteps=64] [--trials=5] [--fanout=8] [--seed=1]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;
using engine::Addr;
using engine::Message;
using engine::ProcId;
using engine::Slot;
using engine::Word;

/// One processor's traffic, identical every superstep: fanout messages of
/// 1-3 flits to pseudorandom destinations plus a few shared-memory writes.
struct Traffic {
  std::uint32_t p = 0;
  std::size_t shared_cells = 0;
  std::vector<std::vector<std::pair<ProcId, std::uint32_t>>> sends;
  std::vector<std::vector<Addr>> writes;
  std::uint64_t flits_per_superstep = 0;
  std::uint64_t requests_per_superstep = 0;
};

Traffic make_traffic(std::uint32_t p, std::uint32_t fanout,
                     std::uint32_t writes_per_proc, std::uint64_t seed) {
  Traffic t;
  t.p = p;
  t.shared_cells = 4ull * p;
  t.sends.resize(p);
  t.writes.resize(p);
  util::Xoshiro256 rng(seed);
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const auto dst = static_cast<ProcId>(rng.below(p));
      const auto len = 1 + static_cast<std::uint32_t>(rng.below(3));
      t.sends[i].emplace_back(dst, len);
      t.flits_per_superstep += len;
    }
    for (std::uint32_t k = 0; k < writes_per_proc; ++k) {
      t.writes[i].push_back(static_cast<Addr>(rng.below(t.shared_cells)));
      ++t.requests_per_superstep;
    }
  }
  return t;
}

/// Replays the traffic on the real engine for `rounds` supersteps.
class ReplayProgram final : public engine::SuperstepProgram {
 public:
  ReplayProgram(const Traffic& traffic, std::uint64_t rounds)
      : traffic_(traffic), rounds_(rounds) {}
  void setup(engine::Machine& m) override {
    m.resize_shared(traffic_.shared_cells);
  }
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() >= rounds_) return false;
    for (const auto& [dst, len] : traffic_.sends[ctx.id()]) {
      ctx.send(dst, ctx.id(), 0, len);
    }
    for (const auto addr : traffic_.writes[ctx.id()]) {
      ctx.write(addr, ctx.id());
    }
    return true;
  }

 private:
  const Traffic& traffic_;
  std::uint64_t rounds_;
};

/// The pre-overhaul Phase 2, verbatim in structure: per-superstep
/// next_inboxes / recv_flits / contention-map allocation, serial
/// source-order routing, then a move into the persistent inboxes.
struct LegacyMerge {
  struct WriteReq {
    Addr addr;
    Word value;
    Slot slot;
  };

  std::uint32_t p;
  std::vector<std::vector<Message>> outboxes;     // per source, slot-sorted
  std::vector<std::vector<WriteReq>> write_reqs;  // per source
  std::vector<std::vector<Message>> inboxes;
  std::vector<Word> shared;
  std::uint64_t sink = 0;  // defeats dead-code elimination

  explicit LegacyMerge(const Traffic& t)
      : p(t.p), outboxes(t.p), write_reqs(t.p), inboxes(t.p),
        shared(t.shared_cells, 0) {
    for (std::uint32_t i = 0; i < p; ++i) {
      Slot next_slot = 1;  // the engine's auto-slot rule: back-to-back flits
      for (const auto& [dst, len] : t.sends[i]) {
        outboxes[i].push_back(Message{i, dst, i, 0, len, next_slot});
        next_slot += len;
      }
      for (const auto addr : t.writes[i]) {
        write_reqs[i].push_back(WriteReq{addr, i, next_slot++});
      }
    }
  }

  void superstep() {
    engine::SuperstepStats stats;
    std::vector<std::vector<Message>> next_inboxes(p);
    std::vector<std::uint64_t> recv_flits(p, 0);
    std::unordered_map<Addr, std::pair<std::uint64_t, std::uint64_t>> contention;

    Slot max_slot_end = 0;
    for (std::uint32_t i = 0; i < p; ++i) {
      for (const auto& msg : outboxes[i]) {
        max_slot_end = std::max(max_slot_end, msg.slot + msg.length);
      }
      for (const auto& req : write_reqs[i]) {
        max_slot_end = std::max(max_slot_end, req.slot + 1);
      }
    }
    stats.slot_counts.assign(max_slot_end == 0 ? 0 : max_slot_end - 1, 0);

    for (std::uint32_t i = 0; i < p; ++i) {
      std::uint64_t sent = 0;
      for (const auto& msg : outboxes[i]) {
        sent += msg.length;
        recv_flits[msg.dst] += msg.length;
        for (std::uint32_t k = 0; k < msg.length; ++k) {
          ++stats.slot_counts[msg.slot - 1 + k];
        }
        next_inboxes[msg.dst].push_back(msg);
      }
      stats.max_sent = std::max(stats.max_sent, sent);
      stats.total_flits += sent;
      for (const auto& req : write_reqs[i]) {
        ++contention[req.addr].second;
        ++stats.slot_counts[req.slot - 1];
      }
      stats.max_writes =
          std::max(stats.max_writes,
                   static_cast<std::uint64_t>(write_reqs[i].size()));
      stats.total_requests += write_reqs[i].size();
    }
    for (const auto& [addr, counts] : contention) {
      stats.kappa = std::max({stats.kappa, counts.first, counts.second});
    }
    for (std::uint32_t i = 0; i < p; ++i) {
      stats.max_received = std::max(stats.max_received, recv_flits[i]);
      for (const auto& req : write_reqs[i]) shared[req.addr] = req.value;
    }
    inboxes = std::move(next_inboxes);
    sink += stats.kappa + stats.max_received + inboxes[0].size() + shared[0];
  }
};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Best-of-`trials` legacy merge wall-clock for `rounds` supersteps.
std::uint64_t time_legacy(const Traffic& traffic, std::uint64_t rounds,
                          int trials) {
  LegacyMerge merge(traffic);
  merge.superstep();  // warm-up: touch every allocation path once
  std::uint64_t best = UINT64_MAX;
  for (int t = 0; t < trials; ++t) {
    const auto start = now_ns();
    for (std::uint64_t s = 0; s < rounds; ++s) merge.superstep();
    best = std::min(best, now_ns() - start);
  }
  return best;
}

struct EngineTiming {
  std::uint64_t merge_ns = 0;
  std::uint64_t step_ns = 0;
  std::uint64_t items = 0;  // flits + shared requests merged per run
};

/// Best-of-`trials` engine merge time via the profile counters.
EngineTiming time_engine(const engine::CostModel& model, const Traffic& traffic,
                         std::uint64_t rounds, int trials, std::size_t threads) {
  engine::MachineOptions opts;
  opts.threads = threads;
  opts.profile = true;
  engine::Machine machine(model, opts);
  EngineTiming best;
  best.merge_ns = UINT64_MAX;
  {
    ReplayProgram warmup(traffic, rounds);
    (void)machine.run(warmup);  // warm-up: grow queues to steady state
  }
  for (int t = 0; t < trials; ++t) {
    ReplayProgram prog(traffic, rounds);
    (void)machine.run(prog);
    const auto& c = machine.counters();
    if (c.merge_ns < best.merge_ns) {
      best.merge_ns = c.merge_ns;
      best.step_ns = c.step_ns;
      best.items = c.merge_flits + c.merge_requests;
    }
  }
  return best;
}

double mitems_per_s(std::uint64_t items, std::uint64_t ns) {
  return ns == 0 ? 0.0 : static_cast<double>(items) * 1e3 /
                             static_cast<double>(ns);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "E13 — engine merge-phase throughput and thread scaling (host wall-clock, not model time)",
      {{"supersteps=<n>", "supersteps per trial (default 64)"},
       {"trials=<n>", "trials per configuration (default 5)"},
       {"fanout=<n>", "messages sent per processor per superstep (default 8)"},
       {"writes=<n>", "shared-memory writes per processor (default 4)"},
       {"seed=<n>", "RNG seed (default 1)"},
       {"out=<file>", "also write results as JSON to <file>"},
       {"help", "show this help and exit"}});
  const auto rounds =
      static_cast<std::uint64_t>(cli.get_int("supersteps", 64));
  const int trials = static_cast<int>(cli.get_int("trials", 5));
  const auto fanout = static_cast<std::uint32_t>(cli.get_int("fanout", 8));
  const auto writes = static_cast<std::uint32_t>(cli.get_int("writes", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::size_t hw =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  if (rounds == 0 || trials <= 0 || fanout == 0) {
    std::cerr << cli.program()
              << ": --supersteps, --trials and --fanout must be positive\n";
    return 2;
  }

  util::Json root = util::Json::object();
  root["bench"] = "engine_merge";
  root["supersteps"] = rounds;
  root["trials"] = trials;
  root["fanout"] = fanout;
  root["writes_per_proc"] = writes;
  root["hardware_threads"] = hw;
  util::Json results = util::Json::array();

  for (const std::uint32_t p : {64u, 256u, 1024u}) {
    const Traffic traffic = make_traffic(p, fanout, writes, seed);
    core::ModelParams prm;
    prm.p = p;
    prm.g = 2;
    prm.m = std::max(1u, p / 2);
    prm.L = 1;
    const core::QsmM model(prm);

    const auto legacy_ns = time_legacy(traffic, rounds, trials);
    const auto t1 = time_engine(model, traffic, rounds, trials, 1);
    const auto thw = time_engine(model, traffic, rounds, trials, hw);
    const std::uint64_t items =
        (traffic.flits_per_superstep + traffic.requests_per_superstep) * rounds;

    util::Json row = util::Json::object();
    row["p"] = p;
    row["flits_per_superstep"] = traffic.flits_per_superstep;
    row["requests_per_superstep"] = traffic.requests_per_superstep;
    util::Json legacy = util::Json::object();
    legacy["merge_ns"] = legacy_ns;
    legacy["mitems_per_s"] = mitems_per_s(items, legacy_ns);
    row["legacy_serial"] = std::move(legacy);
    util::Json e1 = util::Json::object();
    e1["merge_ns"] = t1.merge_ns;
    e1["step_ns"] = t1.step_ns;
    e1["mitems_per_s"] = mitems_per_s(t1.items, t1.merge_ns);
    row["engine_threads_1"] = std::move(e1);
    util::Json ehw = util::Json::object();
    ehw["threads"] = hw;
    ehw["merge_ns"] = thw.merge_ns;
    ehw["step_ns"] = thw.step_ns;
    ehw["mitems_per_s"] = mitems_per_s(thw.items, thw.merge_ns);
    row["engine_threads_hw"] = std::move(ehw);
    row["speedup_t1_vs_legacy"] = static_cast<double>(legacy_ns) /
                                  static_cast<double>(t1.merge_ns);
    row["speedup_hw_vs_legacy"] = static_cast<double>(legacy_ns) /
                                  static_cast<double>(thw.merge_ns);
    results.push_back(std::move(row));
  }
  root["results"] = std::move(results);

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    file << root.dump() << "\n";
  }
  std::cout << root.dump() << "\n";
  return 0;
}
