// Ablation — the two sorting engines behind Table 1's last row:
// deterministic columnsort (valid for s <= (n/2)^{1/3} columns) vs
// randomized sample sort (S = m lg n sorters, needs m^2 lg^2 n = O(n)),
// across n and m, against the Theta(n/m + L) bound.
//
//   ./bench_sorting [--seed=1]
#include <iostream>

#include "algos/columnsort.hpp"
#include "algos/sorting.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbw;

namespace {

std::vector<engine::Word> random_keys(std::uint32_t n, util::Xoshiro256& rng) {
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(1 << 30));
  return v;
}

std::uint32_t pow2_columns(std::uint64_t n, std::uint32_t p) {
  std::uint32_t s = 2;
  while (2 * s <= pbw::algos::columnsort_max_columns(n, p)) s *= 2;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Xoshiro256 rng(util::parse_model_flags(cli).seed);

  util::print_banner(std::cout, "Sorting engines vs Theta(n/m + L) (p=256, L=4)");
  util::Table table({"n", "m", "n/m+L", "columnsort", "samplesort",
                     "col ratio", "smp ratio", "both correct"});
  const std::uint32_t p = 256;
  const double L = 4;
  for (std::uint32_t n : {4096u, 16384u, 65536u}) {
    for (std::uint32_t m : {4u, 16u}) {
      core::ModelParams prm;
      prm.p = p;
      prm.g = static_cast<double>(p) / m;
      prm.m = m;
      prm.L = L;
      const core::BspM model(prm);
      const auto keys = random_keys(n, rng);
      const double bound = core::bounds::sort_bsp_m(n, m, L);

      const auto s = pow2_columns(n, p);
      const auto col = algos::columnsort_bsp(model, keys, s, m);
      const auto smp = algos::sample_sort_bsp(model, keys, m);
      table.add_row({util::Table::integer(n), util::Table::integer(m),
                     util::Table::num(bound), util::Table::num(col.time),
                     util::Table::num(smp.time),
                     util::Table::num(col.time / bound),
                     util::Table::num(smp.time / bound),
                     col.correct && smp.correct ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: sample sort approaches the Theta(n/m) bound as\n"
               "n grows past m^2 lg^2 n (the splitter machinery amortizes);\n"
               "columnsort is work-bound by its (n/s) lg(n/s) column sorts\n"
               "(s <= (n/2)^{1/3}) but is deterministic and within the bound's\n"
               "constant for small m — the trade the Adler-Byers-Karp recursion\n"
               "resolves at full scale.\n";
  return 0;
}
