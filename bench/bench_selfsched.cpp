// E11 — Section 2, "A simplified cost metric": any algorithm for the
// self-scheduling BSP(m) (charge max(w, h, n/m, L), no explicit slots)
// runs on the true BSP(m) within (1+eps) w.h.p., because Unbalanced-Send
// realizes the slot schedule.  We route the same workloads under both
// metrics and print the ratio.
//
//   ./bench_selfsched [--p=256] [--m=32] [--trials=5]
#include <iostream>

#include "core/model/models.hpp"
#include "sched/runner.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags =
      util::parse_model_flags(cli, {.p = 256, .m = 32, .L = 8, .trials = 5});
  const auto p = flags.p;
  const auto m = flags.m;
  const int trials = flags.trials;
  const double L = flags.L;
  const double eps = cli.get_double("eps", 0.25);
  util::Xoshiro256 rng(flags.seed);

  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = L;
  const core::SelfSchedulingBspM self_model(prm);
  const core::BspM real_model(prm, core::Penalty::kExponential);

  util::print_banner(std::cout,
                     "Self-scheduling BSP(m) vs true BSP(m) (eps=" +
                         util::Table::num(eps) + ")");
  util::Table table({"workload", "self-sched cost", "BSP(m) via UnbSend (mean)",
                     "ratio", "<= 1+eps (+slack)"});
  struct Case {
    const char* name;
    sched::Relation rel;
  };
  std::vector<Case> cases;
  cases.push_back({"balanced", sched::balanced_relation(p, 64, rng)});
  cases.push_back({"point skew 0.5", sched::point_skew_relation(p, 16384, 0.5, rng)});
  cases.push_back({"zipf 1.0", sched::zipf_relation(p, 16384, 1.0, rng)});
  cases.push_back({"dest skew", sched::dest_skew_relation(p, 16384, 0.8, rng)});
  cases.push_back({"nearly local", sched::nearly_local_relation(p, 16384, 0.1, rng)});

  for (auto& c : cases) {
    const auto naive = sched::naive_schedule(c.rel);
    const auto self_run = sched::route_relation(self_model, c.rel, naive, m, L);
    std::vector<double> real_times;
    for (int t = 0; t < trials; ++t) {
      const auto s = sched::unbalanced_send_schedule(c.rel, m, eps,
                                                     c.rel.total_flits(), rng);
      real_times.push_back(
          sched::route_relation(real_model, c.rel, s, m, L).send_time);
    }
    const double mean = util::summarize(real_times).mean;
    const double ratio = mean / self_run.send_time;
    table.add_row({c.name, util::Table::num(self_run.send_time),
                   util::Table::num(mean), util::Table::num(ratio),
                   ratio <= 1 + eps + 0.15 ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the true BSP(m) pays at most ~(1+eps) over the\n"
               "simplified metric, validating the paper's claim that the\n"
               "self-scheduling model suffices for algorithm design.\n";
  return 0;
}
