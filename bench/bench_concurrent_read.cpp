// E3 — Theorem 5.1: one CRCW PRAM(m) step simulated on the QSM(m) in
// O(p/m).  Sweeps p and read patterns; reports measured QSM(m) time
// against the p/m bound, plus the direct-read count (the central-read
// shortcut's effectiveness).
//
//   ./bench_concurrent_read [--seed=1]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "pram/cr_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbw;

namespace {

core::ModelParams qparams(std::uint32_t p, std::uint32_t m) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = static_cast<double>(p) / m;
  prm.m = m;
  prm.L = 1;
  return prm;
}

std::vector<std::uint32_t> pattern(const std::string& kind, std::uint32_t p,
                                   std::uint32_t m, util::Xoshiro256& rng) {
  std::vector<std::uint32_t> addr(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    if (kind == "all-same") {
      addr[i] = 0;
    } else if (kind == "round-robin") {
      addr[i] = i % m;
    } else if (kind == "zipf") {
      addr[i] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(m - 1, rng.below(m) * rng.below(m) / m));
    } else {
      addr[i] = static_cast<std::uint32_t>(rng.below(m));
    }
  }
  return addr;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "E3 — one CRCW PRAM(m) step simulated on the QSM(m): measured time vs the p/m bound (Theorem 5.1)",
      {{"seed=<n>", "RNG seed for the read patterns (default 1)"},
       {"help", "show this help and exit"}});
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  util::print_banner(std::cout,
                     "Theorem 5.1: CRCW PRAM(m) step on QSM(m) in O(p/m)");
  util::Table table({"p", "m", "pattern", "measured", "p/m", "ratio",
                     "direct reads", "correct"});
  for (std::uint32_t p : {256u, 1024u, 4096u}) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        std::max(2.0, std::sqrt(static_cast<double>(p)) / 2));
    const core::QsmM model(qparams(p, m));
    std::vector<engine::Word> memory(m);
    for (std::uint32_t a = 0; a < m; ++a) memory[a] = 1000 + a;
    for (const char* kind : {"all-same", "round-robin", "random", "zipf"}) {
      const auto addr = pattern(kind, p, m, rng);
      const auto r = pram::simulate_cr_step(model, memory, addr, m);
      table.add_row({util::Table::integer(p), util::Table::integer(m), kind,
                     util::Table::num(r.time),
                     util::Table::num(core::bounds::cr_step_sim_qsm_m(p, m)),
                     util::Table::num(r.time /
                                      core::bounds::cr_step_sim_qsm_m(p, m)),
                     util::Table::integer(r.direct_reads),
                     r.correct ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  util::print_banner(std::cout,
                     "Ablation: central reads vs the standard EREW simulation "
                     "(all-same pattern)");
  util::Table t2({"p", "m", "central reads", "std doubling", "slowdown",
                  "lg p"});
  for (std::uint32_t p : {256u, 1024u, 4096u}) {
    const std::uint32_t m = static_cast<std::uint32_t>(
        std::max(2.0, std::sqrt(static_cast<double>(p)) / 2));
    const core::QsmM model(qparams(p, m));
    std::vector<engine::Word> memory(m, 5);
    const std::vector<std::uint32_t> addr(p, 0);
    const auto central = pram::simulate_cr_step(
        model, memory, addr, m, pram::CrDistribution::kCentralReads);
    const auto doubling = pram::simulate_cr_step(
        model, memory, addr, m, pram::CrDistribution::kStandardDoubling);
    t2.add_row({util::Table::integer(p), util::Table::integer(m),
                util::Table::num(central.time), util::Table::num(doubling.time),
                util::Table::num(doubling.time / central.time),
                util::Table::num(core::bounds::lg(p))});
  }
  t2.print(std::cout);

  std::cout << "\nShape check: measured time stays within a constant of p/m\n"
               "across patterns and scales; the ratio column is flat in p.\n"
               "The ablation shows why Theorem 5.1 replaces the standard EREW\n"
               "simulation: its doubling distribution pays an extra factor\n"
               "tracking lg p.\n";
  return 0;
}
