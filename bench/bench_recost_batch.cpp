// E21 — batched recosting throughput vs per-point scalar recost.
//
// Captures one StatsTape of a fixed message+shared-memory workload, then
// charges a dense cost grid (family x g x L x m x penalty) two ways:
//
//   * scalar — one replay::recost() tape traversal per grid point (the E20
//              fast path, already ~10^3x the simulator);
//   * batch  — ONE replay::recost_batch() call for the whole grid: per-step
//              cost terms and per-(m, penalty) aggregate charges derived
//              once, then a branch-free non-virtual charge loop per point.
//
// Both paths are bit-equal per point (verified here; it is the recost_batch
// contract), so the wall-clock ratio is pure kernel speedup — what a
// campaign's cost-only sub-grids gain from the executor's batch path.
// Emits one JSON document on stdout (or --out=FILE).
//
//   ./bench_recost_batch [--p=256] [--h=8] [--supersteps=16]
//                        [--points=20000] [--seed=1]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "replay/batch.hpp"
#include "replay/recorder.hpp"
#include "replay/tape.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace pbw;

/// Random h-relation plus contended reads, every superstep (same workload
/// as E20 bench_replay, so the tapes are comparable).
class Workload final : public engine::SuperstepProgram {
 public:
  Workload(std::uint32_t h, std::uint64_t rounds) : h_(h), rounds_(rounds) {}
  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p() + 256);
  }
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() >= rounds_) return false;
    ctx.charge(1.0);
    for (std::uint32_t k = 0; k < h_; ++k) {
      ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
               ctx.id(), 0, 1);
      ctx.read(ctx.p() + ctx.rng().below(256));
    }
    return true;
  }

 private:
  std::uint32_t h_;
  std::uint64_t rounds_;
};

/// Grid point `index`: cycles all five families over varied parameters.
/// m repeats with period 16 so the batch's per-(m, penalty) aggregate
/// charges are shared ~points/32 ways — the shape of a real dense sweep,
/// where each m value recurs across the whole (g, L, model) sub-grid.
replay::CostPointSpec spec_at(std::size_t index) {
  constexpr replay::ModelFamily kFamilies[5] = {
      replay::ModelFamily::kBspG, replay::ModelFamily::kBspM,
      replay::ModelFamily::kQsmG, replay::ModelFamily::kQsmM,
      replay::ModelFamily::kSelfSchedulingBspM};
  replay::CostPointSpec spec;
  spec.family = kFamilies[index % 5];
  spec.g = 1.0 + static_cast<double>(index % 7);
  spec.L = 1.0 + static_cast<double>((index * 3) % 97);
  spec.m = 1u + static_cast<std::uint32_t>(index % 16) * 16u;
  spec.penalty = (index % 2) == 0 ? core::Penalty::kLinear
                                  : core::Penalty::kExponential;
  return spec;
}

/// The virtual model spec_at(index) describes, for the scalar reference.
std::unique_ptr<core::ModelBase> model_at(const replay::CostPointSpec& spec,
                                          std::uint32_t p) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = spec.g;
  prm.L = spec.L;
  prm.m = spec.m;
  switch (spec.family) {
    case replay::ModelFamily::kBspG:
      return std::make_unique<core::BspG>(prm);
    case replay::ModelFamily::kBspM:
      return std::make_unique<core::BspM>(prm, spec.penalty);
    case replay::ModelFamily::kQsmG:
      return std::make_unique<core::QsmG>(prm);
    case replay::ModelFamily::kQsmM:
      return std::make_unique<core::QsmM>(prm, spec.penalty);
    case replay::ModelFamily::kSelfSchedulingBspM:
      return std::make_unique<core::SelfSchedulingBspM>(prm);
  }
  return nullptr;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help")) {
    std::cout << "E21 — batched recost throughput vs per-point recost\n\n"
              << "usage: " << argv[0] << " [--flag=value ...]\n\n"
              << "  --p=<n>           processors (default 256)\n"
              << "  --h=<n>           messages+reads per proc per superstep "
                 "(default 8)\n"
              << "  --supersteps=<n>  communication supersteps (default 16)\n"
              << "  --points=<n>      cost grid points (default 20000)\n"
              << "  --seed=<n>        RNG seed (default 1)\n"
              << "  --out=<file>      also write results as JSON to <file>\n";
    return 0;
  }
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 256));
  const auto h = static_cast<std::uint32_t>(cli.get_int("h", 8));
  const auto rounds =
      static_cast<std::uint64_t>(cli.get_int("supersteps", 16));
  const auto points = static_cast<std::size_t>(cli.get_int("points", 20000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // Capture once.
  replay::TapeRecorder recorder;
  {
    core::ModelParams prm;
    prm.p = p;
    const core::BspM capture_model(prm);
    engine::MachineOptions options;
    options.seed = seed;
    options.tape_recorder = &recorder;
    Workload program(h, rounds);
    engine::Machine machine(capture_model, options);
    (void)machine.run(program);
  }
  const auto& tape = recorder.tapes().front();

  std::vector<replay::CostPointSpec> specs;
  specs.reserve(points);
  for (std::size_t i = 0; i < points; ++i) specs.push_back(spec_at(i));

  // Scalar: one recost() traversal per point.
  std::vector<double> scalar(points);
  const auto scalar_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < points; ++i) {
    const auto model = model_at(specs[i], p);
    scalar[i] = replay::recost(tape, *model).total_time;
  }
  const double scalar_secs = seconds_since(scalar_start);

  // Batch: one recost_batch() call for the whole grid.
  const auto batch_start = std::chrono::steady_clock::now();
  const std::vector<engine::SimTime> batched =
      replay::recost_batch(tape, specs);
  const double batch_secs = seconds_since(batch_start);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < points; ++i) {
    if (!bits_equal(scalar[i], batched[i])) ++mismatches;
  }

  util::Json doc = util::Json::object();
  doc["bench"] = util::Json("recost_batch");
  doc["p"] = util::Json(static_cast<double>(p));
  doc["h"] = util::Json(static_cast<double>(h));
  doc["supersteps"] = util::Json(static_cast<double>(rounds));
  doc["points"] = util::Json(static_cast<double>(points));
  doc["scalar_s"] = util::Json(scalar_secs);
  doc["batch_s"] = util::Json(batch_secs);
  doc["scalar_points_per_s"] =
      util::Json(static_cast<double>(points) / scalar_secs);
  doc["batch_points_per_s"] =
      util::Json(static_cast<double>(points) / batch_secs);
  doc["speedup_batch"] = util::Json(scalar_secs / batch_secs);
  doc["bit_equal"] = util::Json(mismatches == 0);
  std::cout << doc.dump() << "\n";

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    file << doc.dump() << "\n";
    if (!file) {
      std::cerr << "bench_recost_batch: cannot write " << out << "\n";
      return 1;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
