// Ablation — the two O(h) CRCW h-relation realizations of Section 4.1
// (the machinery behind the lower-bound transfer): steps vs h for the
// array-based deterministic algorithm and the concurrent-write retry
// algorithm, across skew.
//
//   ./bench_hrelation_crcw [--seed=1]
#include <iostream>

#include "pram/h_relation.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "Ablation — O(h) CRCW h-relation realizations of Section 4.1: steps vs h across skew",
      {{"seed=<n>", "RNG seed (default 1)"},
       {"help", "show this help and exit"}});
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  util::print_banner(std::cout,
                     "Realizing h-relations on the Arbitrary CRCW PRAM in O(h)");
  util::Table table({"p", "n", "hot", "h", "array steps", "retry steps",
                     "steps/h (array)", "steps/h (retry)", "delivered"});
  for (std::uint32_t p : {16u, 32u}) {
    for (double hot : {0.0, 0.5, 1.0}) {
      const auto rel = sched::point_skew_relation(p, 8ull * p, hot, rng);
      const std::uint64_t h = std::max(rel.max_sent(), rel.max_received());
      const auto array = pram::realize_h_relation_array(rel);
      const auto retry = pram::realize_h_relation_crcw(rel);
      table.add_row(
          {util::Table::integer(p), util::Table::integer(rel.total_flits()),
           util::Table::num(hot), util::Table::integer(h),
           util::Table::integer(static_cast<long long>(array.steps)),
           util::Table::integer(static_cast<long long>(retry.steps)),
           util::Table::num(double(array.steps) / double(h)),
           util::Table::num(double(retry.steps) / double(h)),
           array.delivered && retry.delivered ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: both realizations run in O(h) PRAM steps\n"
               "(steps/h bounded by a small constant at every skew level),\n"
               "which is what converts CRCW lower bounds t(n) into BSP(g)\n"
               "lower bounds g*t(n) in Section 4.1.\n";
  return 0;
}
