// E12 — Section 2, the overload penalty f_m: under the exponential charge
// e^{m_t/m - 1}, an unscheduled send ("everyone at slot 1") costs
// e^{p/m-1}-ish, while a scheduled send collapses to ~n/m; under the
// linear charge the naive send costs only n/m — the reason lower bounds
// use the linear model and upper bounds must survive the exponential one.
//
//   ./bench_penalty [--p=128] [--n=4096]
#include <iostream>

#include "core/model/models.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags = util::parse_model_flags(cli, {.p = 128});
  const auto p = flags.p;
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4096));
  util::Xoshiro256 rng(flags.seed);

  util::print_banner(std::cout, "Overload penalty: naive vs scheduled send");
  util::Table table({"m", "schedule", "penalty", "cost", "peak m_t"});
  const auto rel = sched::balanced_relation(p, static_cast<std::uint32_t>(n / p), rng);
  for (std::uint32_t m : {8u, 32u}) {
    for (const char* which : {"naive", "unbalanced-send", "offline"}) {
      sched::SlotSchedule s(p);
      if (std::string(which) == "naive") {
        s = sched::naive_schedule(rel);
      } else if (std::string(which) == "unbalanced-send") {
        s = sched::unbalanced_send_schedule(rel, m, 0.25, rel.total_flits(), rng);
      } else {
        s = sched::offline_optimal_schedule(rel, m);
      }
      for (auto penalty : {core::Penalty::kLinear, core::Penalty::kExponential}) {
        const auto cost = sched::evaluate_schedule(rel, s, m, penalty, 1);
        table.add_row({util::Table::integer(m), which,
                       core::penalty_name(penalty), util::Table::num(cost.total),
                       util::Table::integer(static_cast<long long>(cost.max_mt))});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: the naive schedule is fine under the linear\n"
               "charge (the lower-bound model) but explodes exponentially in\n"
               "p/m under the upper-bound model; scheduled sends cost ~n/m\n"
               "under both — scheduling is what buys the global-bandwidth\n"
               "advantage.\n";
  return 0;
}
