// E20 — trace-replay recosting throughput vs fresh simulation.
//
// Captures one StatsTape of a fixed message+shared-memory workload, then
// charges a dense cost-parameter grid (model x g x L x m) two ways:
//
//   * simulate — one full Machine::run per grid point (what a campaign
//                without replay pays);
//   * recost   — replay::recost of the captured tape per grid point.
//
// Both paths produce bit-equal totals (verified here per point); the ratio
// of their wall-clocks is the campaign speedup replay buys on cost-only
// sweeps.  Emits one JSON document on stdout (or --out=FILE).
//
//   ./bench_replay [--p=256] [--h=8] [--supersteps=16] [--points=128]
//                  [--seed=1]
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "replay/recorder.hpp"
#include "replay/tape.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace pbw;

/// Random h-relation plus contended reads, every superstep.
class Workload final : public engine::SuperstepProgram {
 public:
  Workload(std::uint32_t h, std::uint64_t rounds) : h_(h), rounds_(rounds) {}
  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p() + 256);
  }
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() >= rounds_) return false;
    ctx.charge(1.0);
    for (std::uint32_t k = 0; k < h_; ++k) {
      ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
               ctx.id(), 0, 1);
      ctx.read(ctx.p() + ctx.rng().below(256));
    }
    return true;
  }

 private:
  std::uint32_t h_;
  std::uint64_t rounds_;
};

std::unique_ptr<core::ModelBase> model_at(std::size_t index,
                                          const core::ModelParams& prm) {
  switch (index % 5) {
    case 0: return std::make_unique<core::BspG>(prm);
    case 1: return std::make_unique<core::BspM>(prm, core::Penalty::kLinear);
    case 2:
      return std::make_unique<core::BspM>(prm, core::Penalty::kExponential);
    case 3: return std::make_unique<core::QsmM>(prm, core::Penalty::kLinear);
    default: return std::make_unique<core::SelfSchedulingBspM>(prm);
  }
}

core::ModelParams point(std::size_t index, std::uint32_t p) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = 1.0 + static_cast<double>(index % 7);
  prm.L = 1.0 + static_cast<double>((index * 3) % 97);
  prm.m = 1u + static_cast<std::uint32_t>((index * 11) % 255);
  return prm;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help")) {
    std::cout << "E20 — recost throughput vs fresh simulation\n\n"
              << "usage: " << argv[0] << " [--flag=value ...]\n\n"
              << "  --p=<n>           processors (default 256)\n"
              << "  --h=<n>           messages+reads per proc per superstep "
                 "(default 8)\n"
              << "  --supersteps=<n>  communication supersteps (default 16)\n"
              << "  --points=<n>      cost grid points (default 128)\n"
              << "  --seed=<n>        RNG seed (default 1)\n"
              << "  --out=<file>      also write results as JSON to <file>\n";
    return 0;
  }
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 256));
  const auto h = static_cast<std::uint32_t>(cli.get_int("h", 8));
  const auto rounds =
      static_cast<std::uint64_t>(cli.get_int("supersteps", 16));
  const auto points = static_cast<std::size_t>(cli.get_int("points", 128));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // Capture once.
  replay::TapeRecorder recorder;
  {
    const core::BspM capture_model(point(0, p));
    engine::MachineOptions options;
    options.seed = seed;
    options.tape_recorder = &recorder;
    Workload program(h, rounds);
    engine::Machine machine(capture_model, options);
    (void)machine.run(program);
  }
  const auto& tape = recorder.tapes().front();

  // Fresh simulation per point.
  std::vector<double> simulated(points);
  const auto sim_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < points; ++i) {
    const auto model = model_at(i, point(i, p));
    engine::MachineOptions options;
    options.seed = seed;
    Workload program(h, rounds);
    engine::Machine machine(*model, options);
    simulated[i] = machine.run(program).total_time;
  }
  const double sim_secs = seconds_since(sim_start);

  // Recost per point.
  std::vector<double> recosted(points);
  const auto recost_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < points; ++i) {
    const auto model = model_at(i, point(i, p));
    recosted[i] = replay::recost(tape, *model).total_time;
  }
  const double recost_secs = seconds_since(recost_start);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < points; ++i) {
    if (!bits_equal(simulated[i], recosted[i])) ++mismatches;
  }

  util::Json doc = util::Json::object();
  doc["bench"] = util::Json("replay");
  doc["p"] = util::Json(static_cast<double>(p));
  doc["h"] = util::Json(static_cast<double>(h));
  doc["supersteps"] = util::Json(static_cast<double>(rounds));
  doc["points"] = util::Json(static_cast<double>(points));
  doc["simulate_s"] = util::Json(sim_secs);
  doc["recost_s"] = util::Json(recost_secs);
  doc["simulate_points_per_s"] = util::Json(static_cast<double>(points) / sim_secs);
  doc["recost_points_per_s"] = util::Json(static_cast<double>(points) / recost_secs);
  doc["speedup"] = util::Json(sim_secs / recost_secs);
  doc["bit_equal"] = util::Json(mismatches == 0);
  std::cout << doc.dump() << "\n";

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    file << doc.dump() << "\n";
    if (!file) {
      std::cerr << "bench_replay: cannot write " << out << "\n";
      return 1;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
