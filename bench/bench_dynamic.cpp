// E10 — Theorems 6.5–6.7: dynamic adversarial arrivals.
//   (a) BSP(g) interval algorithm: stable iff beta <= 1/g.
//   (b) Algorithm B on the BSP(m): stable up to alpha ~ m/(1+eps) and
//       beta far beyond 1/g, for the whole adversary zoo.
//   (c) M/G/1 reference constants from Claim 6.8.
//
//   ./bench_dynamic [--p=32] [--m=8] [--w=128] [--windows=300]
#include <iostream>

#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "core/bounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "E10 — Theorem 6.5: adversarial queuing stability threshold of the BSP(g) at beta = 1/g",
      {{"p=<n>", "processors (default 32)"},
       {"m=<n>", "aggregate bandwidth (default 8)"},
       {"w=<n>", "per-window work (default 128)"},
       {"windows=<n>", "adversary windows simulated (default 300)"},
       {"L=<x>", "latency / periodicity (default 4)"},
       {"help", "show this help and exit"}});
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 32));
  const auto m = static_cast<std::uint32_t>(cli.get_int("m", 8));
  const auto w = static_cast<std::uint32_t>(cli.get_int("w", 128));
  const auto windows = static_cast<std::uint64_t>(cli.get_int("windows", 300));
  const double g = static_cast<double>(p) / m;
  const double L = cli.get_double("L", 4);

  util::print_banner(std::cout, "Theorem 6.5: BSP(g) stability threshold at "
                                "beta = 1/g = " + util::Table::num(1 / g));
  util::Table t1({"beta", "predicted", "tail slope", "final queue", "verdict"});
  for (double beta : {0.5 / g, 0.9 / g, 1.1 / g, 2.0 / g, 4.0 / g}) {
    aqt::AqtParams prm{p, /*alpha=*/2.0, beta, w};
    auto adv = aqt::make_single_source(prm);
    const auto r = aqt::run_bsp_g_dynamic(*adv, g, windows, L);
    t1.add_row({util::Table::num(beta),
                core::bounds::bsp_g_stable(beta, g) ? "stable" : "UNSTABLE",
                util::Table::num(r.tail_slope), util::Table::num(r.final_queue),
                r.stable ? "stable" : "UNSTABLE"});
  }
  t1.print(std::cout);

  util::print_banner(std::cout,
                     "Theorem 6.7: Algorithm B on BSP(m), adversary zoo "
                     "(alpha sweep, beta = 0.5 >> 1/g)");
  util::Table t2({"adversary", "alpha", "mean queue", "tail slope", "verdict"});
  for (double alpha : {0.5 * m, 0.7 * m, 1.2 * m}) {
    aqt::AqtParams prm{p, alpha, 0.5, w};
    for (auto& adv : aqt::adversary_zoo(prm)) {
      const auto r = aqt::run_algorithm_b(*adv, m, 0.25, windows, L,
                                          aqt::BatchPolicy::kUnbalancedSend);
      t2.add_row({adv->name(), util::Table::num(alpha),
                  util::Table::num(r.mean_queue), util::Table::num(r.tail_slope),
                  r.stable ? "stable" : "UNSTABLE"});
    }
  }
  t2.print(std::cout);

  util::print_banner(std::cout, "Policy ablation at alpha = 0.5 m (steady)");
  util::Table t3({"policy", "mean service", "max service", "verdict"});
  aqt::AqtParams prm{p, 0.5 * m, 0.25, w};
  for (auto policy : {aqt::BatchPolicy::kOffline, aqt::BatchPolicy::kUnbalancedSend,
                      aqt::BatchPolicy::kNaive}) {
    auto adv = aqt::make_steady(prm);
    const auto r = aqt::run_algorithm_b(*adv, m, 0.25, windows, L, policy);
    const char* name = policy == aqt::BatchPolicy::kOffline ? "offline optimal"
                       : policy == aqt::BatchPolicy::kUnbalancedSend
                           ? "Unbalanced-Send"
                           : "naive (slot 1)";
    t3.add_row({name, util::Table::num(r.mean_service),
                util::Table::num(r.max_service),
                r.stable ? "stable" : "UNSTABLE"});
  }
  t3.print(std::cout);

  util::print_banner(std::cout, "Claim 6.8: M/G/1 dominance constants");
  const auto moments = aqt::algob_service_moments(w, w / 10.0);
  std::cout << "service mu1 = " << moments.mu1 << "  (claim: < 1.21 w/u = "
            << 1.21 * 10 << ")\n"
            << "mean queue at r=0.05: "
            << aqt::mg1_mean_queue(0.05, moments.mu1, moments.mu2) << "\n";
  std::cout << "\nShape check: BSP(g) flips to unstable exactly past beta=1/g;\n"
               "Algorithm B stays stable at beta = 0.5 = (g/2)*(1/g) for every\n"
               "adversary while alpha <= ~m/(1+eps), and diverges once alpha\n"
               "exceeds the aggregate bandwidth m, matching Theorem 6.7.\n";
  return 0;
}
