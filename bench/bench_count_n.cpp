// Ablation — the tau routine of Theorem 6.2: measured cost of computing
// and broadcasting n against the O(p/m + L + L lg m / lg L) formula, and
// the combining-tree arity choice (the paper uses arity L; smaller or
// larger arities pay more).
//
//   ./bench_count_n [--trials=1]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/count_n.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "Ablation — cost of the count-n tau routine vs O(p/m + L + L lg m / lg L) and the combining-tree arity choice (Theorem 6.2)",
      {{"seed=<n>", "RNG seed (default 1)"},
       {"help", "show this help and exit"}});
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  util::print_banner(std::cout, "tau = time to count and broadcast n on BSP(m)");
  util::Table table({"p", "m", "L", "measured", "formula", "ratio", "agree"});
  for (std::uint32_t p : {256u, 1024u, 4096u}) {
    for (std::uint32_t m : {16u, 64u}) {
      for (double L : {4.0, 16.0}) {
        core::ModelParams prm;
        prm.p = p;
        prm.g = static_cast<double>(p) / m;
        prm.m = m;
        prm.L = L;
        const core::BspM model(prm);
        std::vector<std::uint64_t> x(p);
        for (auto& v : x) v = rng.below(100);
        const auto r = sched::count_and_broadcast(model, x, m,
                                                  static_cast<std::uint32_t>(L));
        const double formula = core::bounds::count_n_time(p, m, L);
        table.add_row({util::Table::integer(p), util::Table::integer(m),
                       util::Table::num(L), util::Table::num(r.time),
                       util::Table::num(formula),
                       util::Table::num(r.time / formula),
                       r.all_procs_agree ? "yes" : "NO"});
      }
    }
  }
  table.print(std::cout);

  util::print_banner(std::cout,
                     "Arity ablation (p=4096, m=64, L=16): the paper's "
                     "choice is arity = L");
  util::Table t2({"tree arity", "measured tau"});
  {
    core::ModelParams prm;
    prm.p = 4096;
    prm.g = 64;
    prm.m = 64;
    prm.L = 16;
    const core::BspM model(prm);
    std::vector<std::uint64_t> x(4096, 3);
    for (std::uint32_t arity : {2u, 4u, 8u, 16u, 32u, 64u}) {
      const auto r = sched::count_and_broadcast(model, x, 64, arity);
      t2.add_row({util::Table::integer(arity), util::Table::num(r.time)});
    }
  }
  t2.print(std::cout);
  std::cout << "\nShape check: tau tracks p/m + L + L lg m / lg L within a\n"
               "small constant, and the arity-L tree minimizes the combine\n"
               "phase (smaller arity pays more L-bound supersteps, larger\n"
               "arity pays h > L per superstep).\n";
  return 0;
}
