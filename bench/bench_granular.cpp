// E7 — Theorem 6.4: Unbalanced-Granular-Send completes in c*n/m w.h.p.
// needing only p < e^{alpha m} (instead of n < e^{alpha m}): the
// small-m / huge-n stress that breaks the plain analysis.
//
//   ./bench_granular [--p=128] [--trials=10]
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "E7 — Theorem 6.4: Unbalanced-Granular-Send completes in c*n/m w.h.p. for p < e^{alpha m}",
      {{"p=<n>", "processors (default 128)"},
       {"trials=<n>", "trials per grid point (default 10)"},
       {"c=<x>", "target constant in c*n/m (default 3)"},
       {"seed=<n>", "RNG seed (default 1)"},
       {"help", "show this help and exit"}});
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 128));
  const int trials = static_cast<int>(cli.get_int("trials", 10));
  const double c = cli.get_double("c", 3.0);
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  util::print_banner(std::cout, "Theorem 6.4: Granular-Send, small m / large n "
                                "(p=" + std::to_string(p) + ", c=" +
                                util::Table::num(c) + ")");
  util::Table table({"m", "n", "n/m", "granular mean", "ratio to c*n/m",
                     "overload frac (granular)", "overload frac (plain)"});
  for (std::uint32_t m : {4u, 8u, 16u, 32u}) {
    const std::uint64_t n = 2048ull * m;  // n >> p
    const auto rel = sched::balanced_relation(
        p, static_cast<std::uint32_t>(n / p), rng);
    const std::uint64_t nn = rel.total_flits();
    std::vector<double> times;
    int granular_over = 0, plain_over = 0;
    for (int t = 0; t < trials; ++t) {
      const auto s = sched::granular_send_schedule(rel, m, c, nn, rng);
      const auto cost =
          sched::evaluate_schedule(rel, s, m, core::Penalty::kExponential, 1);
      times.push_back(cost.total);
      granular_over += !cost.within_limit;
      const auto s2 = sched::unbalanced_send_schedule(rel, m, 0.25, nn, rng);
      plain_over +=
          !sched::evaluate_schedule(rel, s2, m, core::Penalty::kExponential, 1)
               .within_limit;
    }
    const double mean = util::summarize(times).mean;
    table.add_row({util::Table::integer(m), util::Table::integer(nn),
                   util::Table::num(double(nn) / m), util::Table::num(mean),
                   util::Table::num(mean / (c * double(nn) / m)),
                   util::Table::num(double(granular_over) / trials),
                   util::Table::num(double(plain_over) / trials)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: completion stays below c*n/m, and the success\n"
               "probability depends on p (not n) -- the granularity t' = n/p\n"
               "keeps the number of random events at c'p/m per theorem 6.4.\n";
  return 0;
}
