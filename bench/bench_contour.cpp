// E22 — million-point contour recosting: SIMD + thread-tiled batch kernel.
//
// The contour.map scenario's shape at benchmark scale: one captured tape,
// then a (g x m) hardware grid — two cost points per cell, BSP(g) at g_i
// and BSP(m) at m_j — charged as ONE recost_batch call.  The default grid
// is 1024 x 512 cells = 2^20 cost points.
//
// Three measurements on the same point set:
//
//   * ref_pr7  — the pre-SIMD batch kernel (one scalar charge loop per
//                point, per-point hash lookups for the aggregate-charge
//                arrays, unmemoized exp), reimplemented here verbatim as
//                the single-thread scalar-lane baseline;
//   * paths.*  — recost_batch pinned to each compiled+supported SIMD path
//                (simd::ScopedPath), single-threaded;
//   * batch    — recost_batch on the default path with a ThreadPool.
//
// Every path's output must be bit-equal to every other's and to the
// reference (and a sampled anchor against per-point scalar recost()); the
// recorded ratios are therefore pure kernel speedup.  Emits one JSON
// document on stdout (or --out=FILE); exits nonzero on any bit mismatch.
//
//   ./bench_contour [--p=256] [--h=8] [--supersteps=128] [--g_cells=1024]
//                   [--m_cells=512] [--repeat=3] [--seed=1] [--out=FILE]
#include <algorithm>
#include <chrono>
#include <exception>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/model/charge.hpp"
#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "replay/batch.hpp"
#include "replay/recorder.hpp"
#include "replay/tape.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pbw;
namespace charge = core::charge;

/// Random h-relation plus contended reads, every superstep (same workload
/// as E21 bench_recost_batch, so the tapes are comparable).
class Workload final : public engine::SuperstepProgram {
 public:
  Workload(std::uint32_t h, std::uint64_t rounds) : h_(h), rounds_(rounds) {}
  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p() + 256);
  }
  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() >= rounds_) return false;
    ctx.charge(1.0);
    for (std::uint32_t k = 0; k < h_; ++k) {
      ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
               ctx.id(), 0, 1);
      ctx.read(ctx.p() + ctx.rng().below(256));
    }
    return true;
  }

 private:
  std::uint32_t h_;
  std::uint64_t rounds_;
};

/// Log-spaced axis from 1 to max inclusive (contour.map's spacing).
std::vector<double> log_axis(std::size_t cells, double max_value) {
  std::vector<double> axis(cells);
  const double log_max = std::log(max_value);
  for (std::size_t i = 0; i < cells; ++i) {
    const double t =
        cells == 1 ? 1.0
                   : static_cast<double>(i) / static_cast<double>(cells - 1);
    axis[i] = std::exp(log_max * t);
  }
  return axis;
}

/// The contour cross product: cell (g_i, m_j) contributes a BSP(g_i) and
/// a BSP(m_j) point, row-major — the exact point stream contour.map
/// submits.
std::vector<replay::CostPointSpec> contour_points(
    const std::vector<double>& gs, const std::vector<std::uint32_t>& ms,
    double L) {
  std::vector<replay::CostPointSpec> specs;
  specs.reserve(gs.size() * ms.size() * 2);
  for (const std::uint32_t m : ms) {
    for (const double g : gs) {
      replay::CostPointSpec local;
      local.family = replay::ModelFamily::kBspG;
      local.g = g;
      local.L = L;
      specs.push_back(local);
      replay::CostPointSpec global;
      global.family = replay::ModelFamily::kBspM;
      global.m = m;
      global.penalty = core::Penalty::kExponential;
      global.L = L;
      specs.push_back(global);
    }
  }
  return specs;
}

std::uint64_t cm_key(std::uint32_t m, core::Penalty penalty) {
  return (static_cast<std::uint64_t>(m) << 1) |
         (penalty == core::Penalty::kExponential ? 1u : 0u);
}

/// The PR 7 recost_batch kernel, verbatim: term arrays derived once, then
/// one scalar charge loop per point with an unordered_map lookup per
/// BSP(m)/QSM(m) point and exp() paid per slot in the aggregate pass.
/// This is the baseline the SIMD + thread-tiled kernel is measured
/// against (trimmed to the two families the contour charges).
std::vector<engine::SimTime> recost_batch_pr7(
    const replay::StatsTape& tape,
    const std::vector<replay::CostPointSpec>& points) {
  std::vector<engine::SimTime> totals;
  totals.reserve(points.size());
  const std::size_t n = tape.size();

  std::vector<double> msg_h(n);
  for (std::size_t i = 0; i < n; ++i) {
    msg_h[i] = charge::flit_h(tape.max_sent[i], tape.max_received[i]);
  }

  std::unordered_map<std::uint64_t, std::vector<double>> cm_arrays;
  for (const replay::CostPointSpec& point : points) {
    if (point.family != replay::ModelFamily::kBspM) continue;
    auto [it, inserted] = cm_arrays.try_emplace(cm_key(point.m, point.penalty));
    if (!inserted) continue;
    std::vector<double>& cm = it->second;
    cm.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      engine::SimTime c = 0.0;
      for (std::uint64_t m_t : tape.slots(i)) {
        c += core::overload_charge(m_t, point.m, point.penalty);
      }
      cm[i] = c;
    }
  }

  const double* w = tape.max_work.data();
  for (const replay::CostPointSpec& point : points) {
    engine::SimTime total = 0.0;
    if (point.family == replay::ModelFamily::kBspG) {
      const charge::BspG f{point.g, point.L};
      for (std::size_t i = 0; i < n; ++i) total += f(w[i], msg_h[i]);
    } else {
      const charge::BspM f{point.L};
      const double* cm = cm_arrays.at(cm_key(point.m, point.penalty)).data();
      for (std::size_t i = 0; i < n; ++i) total += f(w[i], msg_h[i], cm[i]);
    }
    totals.push_back(total);
  }
  return totals;
}

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

std::size_t count_mismatches(const std::vector<engine::SimTime>& a,
                             const std::vector<engine::SimTime>& b) {
  std::size_t mismatches = a.size() == b.size() ? 0 : 1;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (!bits_equal(a[i], b[i])) ++mismatches;
  }
  return mismatches;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Best-of-`repeat` wall time of `fn` (which returns the charged vector);
/// the last run's output lands in `out`.
template <typename Fn>
double best_of(int repeat, std::vector<engine::SimTime>& out, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < repeat; ++r) {
    const auto start = std::chrono::steady_clock::now();
    out = fn();
    const double secs = seconds_since(start);
    if (r == 0 || secs < best) best = secs;
  }
  return best;
}

}  // namespace

int run(int argc, char** argv);

int main(int argc, char** argv) {
  // Flag/parameter violations surface as invalid_argument from the CLI
  // or the model constructors; report and exit 2 instead of aborting.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bench_contour: " << e.what() << "\n";
    return 2;
  }
}

int run(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help")) {
    std::cout
        << "E22 — million-point contour recosting (SIMD + thread tiling)\n\n"
        << "usage: " << argv[0] << " [--flag=value ...]\n\n"
        << "  --p=<n>           processors (default 256)\n"
        << "  --h=<n>           messages+reads per proc per superstep "
           "(default 8)\n"
        << "  --supersteps=<n>  communication supersteps (default 128)\n"
        << "  --g_cells=<n>     gap-axis cells (default 1024)\n"
        << "  --m_cells=<n>     bandwidth-axis cells (default 512)\n"
        << "  --repeat=<n>      timed repetitions, best kept (default 3)\n"
        << "  --seed=<n>        RNG seed (default 1)\n"
        << "  --out=<file>      also write results as JSON to <file>\n";
    return 0;
  }
  const auto p = static_cast<std::uint32_t>(cli.get_int("p", 256));
  const auto h = static_cast<std::uint32_t>(cli.get_int("h", 8));
  const auto rounds = static_cast<std::uint64_t>(cli.get_int("supersteps", 128));
  const auto g_cells = static_cast<std::size_t>(cli.get_int("g_cells", 1024));
  const auto m_cells = static_cast<std::size_t>(cli.get_int("m_cells", 512));
  const int repeat = std::max(1, static_cast<int>(cli.get_int("repeat", 3)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // Capture once.
  replay::TapeRecorder recorder;
  {
    core::ModelParams prm;
    prm.p = p;
    const core::BspM capture_model(prm);
    engine::MachineOptions options;
    options.seed = seed;
    options.tape_recorder = &recorder;
    Workload program(h, rounds);
    engine::Machine machine(capture_model, options);
    (void)machine.run(program);
  }
  const auto& tape = recorder.tapes().front();

  const std::vector<double> gs = log_axis(g_cells, 1024.0);
  const auto m_axis = log_axis(m_cells, 4096.0);
  std::vector<std::uint32_t> ms;
  ms.reserve(m_axis.size());
  for (const double m : m_axis) {
    ms.push_back(static_cast<std::uint32_t>(std::max(1.0, std::round(m))));
  }
  const std::vector<replay::CostPointSpec> specs =
      contour_points(gs, ms, /*L=*/16.0);
  const auto points = specs.size();

  // Baseline: the PR 7 kernel, single thread.
  std::vector<engine::SimTime> reference;
  const double ref_secs =
      best_of(repeat, reference, [&] { return recost_batch_pr7(tape, specs); });

  // Every compiled+supported SIMD path, single-threaded, pinned.
  std::size_t mismatches = 0;
  util::Json path_json = util::Json::object();
  for (const simd::Path path : replay::available_kernel_paths()) {
    const simd::ScopedPath pin(path);
    std::vector<engine::SimTime> out;
    const double secs = best_of(repeat, out, [&] {
      return replay::recost_batch(tape, specs);
    });
    mismatches += count_mismatches(out, reference);
    util::Json entry = util::Json::object();
    entry["batch_s"] = util::Json(secs);
    entry["points_per_s"] = util::Json(static_cast<double>(points) / secs);
    entry["speedup_vs_pr7"] = util::Json(ref_secs / secs);
    path_json[simd::path_name(path)] = std::move(entry);
  }

  // Default path + thread pool: what campaign/planner callers get.
  util::ThreadPool pool;
  replay::BatchInfo info;
  std::vector<engine::SimTime> batched;
  const double batch_secs = best_of(repeat, batched, [&] {
    return replay::recost_batch(tape, specs, &pool, &info);
  });
  mismatches += count_mismatches(batched, reference);

  // Independent anchor: sampled points against per-point scalar recost().
  for (std::size_t i = 0; i < points; i += 4099) {
    core::ModelParams prm;
    prm.p = p;
    prm.g = specs[i].g;
    prm.L = specs[i].L;
    prm.m = specs[i].m;
    std::unique_ptr<core::ModelBase> model;
    if (specs[i].family == replay::ModelFamily::kBspG) {
      model = std::make_unique<core::BspG>(prm);
    } else {
      model = std::make_unique<core::BspM>(prm, specs[i].penalty);
    }
    if (!bits_equal(replay::recost(tape, *model).total_time, reference[i])) {
      ++mismatches;
    }
  }

  util::Json doc = util::Json::object();
  doc["bench"] = util::Json("contour");
  doc["p"] = util::Json(static_cast<double>(p));
  doc["h"] = util::Json(static_cast<double>(h));
  doc["supersteps"] = util::Json(static_cast<double>(rounds));
  doc["g_cells"] = util::Json(static_cast<double>(g_cells));
  doc["m_cells"] = util::Json(static_cast<double>(m_cells));
  doc["points"] = util::Json(static_cast<double>(points));
  doc["ref_pr7_s"] = util::Json(ref_secs);
  doc["ref_pr7_points_per_s"] =
      util::Json(static_cast<double>(points) / ref_secs);
  doc["paths"] = std::move(path_json);
  doc["simd"] = util::Json(simd::path_name(info.path));
  doc["threads"] = util::Json(static_cast<double>(info.threads));
  doc["batch_s"] = util::Json(batch_secs);
  doc["batch_points_per_s"] =
      util::Json(static_cast<double>(points) / batch_secs);
  doc["speedup_vs_pr7"] = util::Json(ref_secs / batch_secs);
  doc["bit_equal"] = util::Json(mismatches == 0);
  std::cout << doc.dump() << "\n";

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream file(out);
    file << doc.dump() << "\n";
    if (!file) {
      std::cerr << "bench_contour: cannot write " << out << "\n";
      return 1;
    }
  }
  return mismatches == 0 ? 0 : 1;
}
