// E8 — Section 6.1, long-message variant: flits of a long message occupy
// consecutive slots; a wrap-crossing message is extended past the window,
// costing at most an additive lhat (max message length) — better than the
// xbar' of Consecutive-Send.
//
//   ./bench_long_messages [--p=128] [--m=16] [--messages=2048] [--trials=5]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags = util::parse_model_flags(cli, {.p = 128, .m = 16, .trials = 5});
  const auto p = flags.p;
  const auto m = flags.m;
  const auto messages = static_cast<std::uint64_t>(cli.get_int("messages", 2048));
  const int trials = flags.trials;
  const double eps = cli.get_double("eps", 0.25);
  util::Xoshiro256 rng(flags.seed);

  util::print_banner(std::cout,
                     "Long messages: window + lhat extension (p=" +
                         std::to_string(p) + ", m=" + std::to_string(m) + ")");
  util::Table table({"max len", "n (flits)", "window", "slots used (mean)",
                     "window+lhat", "cost ratio to opt", "limit ok"});
  for (std::uint32_t maxlen : {1u, 4u, 16u, 64u}) {
    const auto rel =
        sched::variable_length_relation(p, messages, maxlen, 0.1, rng);
    const std::uint64_t n = rel.total_flits();
    const double window = std::ceil((1 + eps) * double(n) / m);
    const double opt = core::bounds::routing_bsp_m_optimal(
        n, rel.max_sent(), rel.max_received(), m, 1);
    std::vector<double> slots, costs;
    bool ok = true;
    for (int t = 0; t < trials; ++t) {
      const auto s = sched::long_message_schedule(rel, m, eps, n, rng);
      sched::validate_schedule(rel, s);
      const auto cost =
          sched::evaluate_schedule(rel, s, m, core::Penalty::kExponential, 1);
      slots.push_back(static_cast<double>(cost.slots_used));
      costs.push_back(cost.total);
      ok &= cost.max_mt <= 2 * m;
    }
    table.add_row({util::Table::integer(maxlen), util::Table::integer(n),
                   util::Table::num(window),
                   util::Table::num(util::summarize(slots).mean),
                   util::Table::num(window + rel.max_length()),
                   util::Table::num(util::summarize(costs).mean / opt),
                   ok ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nShape check: occupied slots stay below window + lhat; the\n"
               "additive term tracks the max message length, not the max\n"
               "per-processor load.\n";
  return 0;
}
