// E4 — Theorem 5.2 / Lemma 5.3: Leader Recognition ER-vs-CR separation on
// the PRAM(m).  The CR algorithm finishes in O(1) steps; the ER algorithm
// needs Theta(p/m); the measured gap is printed next to the
// Omega(p lg m / (m lg p)) separation formula.
//
//   ./bench_leader [--seed=1]
#include <iostream>

#include "core/bounds.hpp"
#include "pram/leader.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace pbw;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::handle_help_flag(
      cli, "E4 — Theorem 5.2 / Lemma 5.3: Leader Recognition ER-vs-CR separation on the PRAM(m)",
      {{"seed=<n>", "RNG seed (default 1)"},
       {"help", "show this help and exit"}});
  util::Xoshiro256 rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)));

  util::print_banner(std::cout,
                     "Leader Recognition: ER vs CR PRAM(m) (w >= lg p words)");
  util::Table table({"p", "m", "CR steps", "ER steps", "measured gap",
                     "LB formula p lg m/(m lg p)", "correct"});
  for (std::uint32_t p : {256u, 1024u, 4096u, 16384u}) {
    for (std::uint32_t m : {4u, 16u, 64u}) {
      const auto leader = static_cast<std::uint32_t>(rng.below(p));
      const auto cr = pram::leader_concurrent_read(p, m, leader);
      const auto er = pram::leader_exclusive_read(p, m, leader);
      table.add_row(
          {util::Table::integer(p), util::Table::integer(m),
           util::Table::integer(static_cast<long long>(cr.steps)),
           util::Table::integer(static_cast<long long>(er.steps)),
           util::Table::num(er.time / cr.time),
           util::Table::num(core::bounds::er_cr_separation(p, m)),
           cr.correct && er.correct ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: the measured gap grows linearly in p/m and\n"
               "dominates the Omega(p lg m/(m lg p)) formula — a vastly\n"
               "larger separation than the 2^Omega(sqrt(lg p)) previously\n"
               "known, as the paper emphasizes.\n";
  return 0;
}
