// E2 — Theorem 4.1: the broadcast lower bound L lg p / (2 lg(2L/g + 1)) on
// the BSP(g), against the (L/g)-ary tree algorithm and the non-receipt
// ternary algorithm (g ceil(log_3 p), valid when L <= g).
//
//   ./bench_broadcast [--g=8] [--L=4]
#include <iostream>

#include "algos/broadcast.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pbw;
namespace bounds = core::bounds;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto flags = util::parse_model_flags(cli, {.g = 8, .L = 4});
  const double g = flags.g;
  const double L = flags.L;

  util::print_banner(std::cout, "Theorem 4.1: BSP(g) broadcast bounds (g=" +
                                    util::Table::num(g) + ", L=" +
                                    util::Table::num(L) + ")");
  util::Table table({"p", "LB (Thm 4.1)", "tree UB (measured)",
                     "ternary UB (measured)", "UB formula", "LB<=meas"});
  for (std::uint32_t p : {64u, 256u, 1024u, 4096u, 16384u}) {
    core::ModelParams prm;
    prm.p = p;
    prm.g = g;
    prm.m = std::max(1u, static_cast<std::uint32_t>(p / g));
    prm.L = L;
    const core::BspG model(prm);
    const auto arity = std::max(1u, static_cast<std::uint32_t>(L / g));
    const auto tree = algos::broadcast_bsp_tree(model, arity, 3);
    const auto ternary = algos::broadcast_ternary_bsp(model, true);
    const double lb = bounds::broadcast_bsp_g_lower(p, g, L);
    const double best = std::min(tree.time, ternary.time);
    table.add_row({util::Table::integer(p), util::Table::num(lb),
                   util::Table::num(tree.time) + (tree.correct ? "" : " (BAD)"),
                   util::Table::num(ternary.time) +
                       (ternary.correct ? "" : " (BAD)"),
                   util::Table::num(bounds::broadcast_bsp_g(p, g, L)),
                   lb <= best + 1e-9 ? "yes" : "NO"});
  }
  table.print(std::cout);

  util::print_banner(std::cout, "Regime L <= g: ternary non-receipt wins");
  util::Table t2({"p", "g", "L", "tree (measured)", "ternary (measured)",
                  "g*ceil(log3 p)"});
  for (std::uint32_t p : {81u, 729u, 6561u}) {
    core::ModelParams prm;
    prm.p = p;
    prm.g = 16;
    prm.m = std::max(1u, p / 16);
    prm.L = 2;
    const core::BspG model(prm);
    const auto tree = algos::broadcast_bsp_tree(model, 1, 3);
    const auto ternary = algos::broadcast_ternary_bsp(model, false);
    t2.add_row({util::Table::integer(p), "16", "2", util::Table::num(tree.time),
                util::Table::num(ternary.time),
                util::Table::num(bounds::broadcast_ternary(p, 16))});
  }
  t2.print(std::cout);
  std::cout << "\nShape check: the ternary algorithm tracks g*ceil(log_3 p)\n"
               "and beats the pairwise tree whenever L <= g, exactly as\n"
               "Section 4.2 predicts from non-receipt inference.\n";
  return 0;
}
