#!/usr/bin/env python3
"""Baseline performance snapshot for the replay-recosting PRs.

Runs four measurements against an existing build tree and writes a single
JSON document (default BENCH_pr7.json):

  * ``bench_engine``  — merge-path throughput (legacy vs engine, Mitems/s);
  * ``bench_replay``  — recost vs fresh-simulation points/s on one tape;
  * ``bench_recost_batch`` — batched recost_batch() vs per-point scalar
    recost() points/s on one tape over a 20k-point grid (E21; the batch
    must be bit-equal and is expected >= 5x the scalar path);
  * ``campaign``      — wall-clock of a fixed dense cost-only sweep
    (grid.pattern, 128 points) run three times through pbw-campaign:
    with ``--no-replay`` (every point simulated), with replay (the
    default; one simulation per structural group), and with
    ``--replay-check`` (replay plus a fresh simulation of every recosted
    point, asserting bit-equal rows).  ``speedup`` is no-replay over
    replay; the check pass is the equivalence gate and is reported
    separately since re-simulating cancels the saving by construction.

Usage:
  python3 scripts/bench_baseline.py [--build build] [--out BENCH_pr7.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

CAMPAIGN_SPEC = """\
[sweep]
scenario = grid.pattern
pattern = random
p = 512
h = 32
rounds = 8
model = bsp-g, bsp-m
g = 2, 4, 8, 16
L = 4, 16, 64, 256
m = 8, 32, 128, 512
penalty = exp
seeds = 1
trials = 3
"""


def run(cmd: list[str], cwd: pathlib.Path | None = None) -> str:
    proc = subprocess.run(
        cmd, cwd=cwd, capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"command failed ({proc.returncode}): {' '.join(cmd)}")
    return proc.stdout


def json_bench(binary: pathlib.Path, args: list[str]) -> dict:
    if not binary.exists():
        raise SystemExit(f"missing {binary}; build the tree first")
    return json.loads(run([str(binary), *args]))


def timed_campaign(
    campaign: pathlib.Path, spec: pathlib.Path, workdir: pathlib.Path, flags: list[str]
) -> tuple[float, str]:
    out = workdir / f"campaign{'-'.join(flags) or '-replay'}.jsonl"
    start = time.monotonic()
    log = run(
        [
            str(campaign),
            "run",
            str(spec),
            f"--out={out}",
            "--threads=1",
            *flags,
        ]
    )
    return time.monotonic() - start, log.strip()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="CMake build directory")
    parser.add_argument("--out", default="BENCH_pr7.json", help="output JSON file")
    args = parser.parse_args()

    build = pathlib.Path(args.build)
    campaign = build / "src" / "campaign" / "pbw-campaign"
    if not campaign.exists():
        raise SystemExit(f"missing {campaign}; build the tree first")

    result = {
        "bench": "pr7_baseline",
        "bench_engine": json_bench(build / "bench" / "bench_engine", []),
        "bench_replay": json_bench(build / "bench" / "bench_replay", []),
        "bench_recost_batch": json_bench(
            build / "bench" / "bench_recost_batch", []
        ),
    }

    with tempfile.TemporaryDirectory(prefix="pbw-bench-") as tmp:
        workdir = pathlib.Path(tmp)
        spec = workdir / "dense.spec"
        spec.write_text(CAMPAIGN_SPEC)
        # --no-replay first so its pass cannot warm anything for the
        # replayed pass; each pass gets a fresh manifest via its own --out.
        # (The tape cache is per-process, so separate invocations never
        # share tapes either.)
        noreplay_s, noreplay_log = timed_campaign(
            campaign, spec, workdir, ["--no-replay"]
        )
        replay_s, replay_log = timed_campaign(campaign, spec, workdir, [])
        check_s, check_log = timed_campaign(
            campaign, spec, workdir, ["--replay-check"]
        )

    result["campaign"] = {
        "spec": CAMPAIGN_SPEC,
        "threads": 1,
        "no_replay_s": noreplay_s,
        "replay_s": replay_s,
        "replay_check_s": check_s,
        "speedup": noreplay_s / replay_s,
        "no_replay_log": noreplay_log,
        "replay_log": replay_log,
        "replay_check_log": check_log,
    }

    pathlib.Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    batch = result["bench_recost_batch"]
    print(
        f"campaign: {noreplay_s:.3f}s simulate-all vs {replay_s:.3f}s "
        f"replayed ({noreplay_s / replay_s:.1f}x); check pass "
        f"{check_s:.3f}s bit-equal; batch recost "
        f"{batch['speedup_batch']:.1f}x scalar "
        f"(bit_equal={batch['bit_equal']}); wrote {args.out}"
    )


if __name__ == "__main__":
    main()
