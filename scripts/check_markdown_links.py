#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Scans every tracked *.md file (repo root, docs/, and any other directory
except build trees) for inline links and validates that:

  * relative file targets exist on disk (after stripping #anchors), and
  * intra-document anchors point at a real heading of the target file.

External links (http://, https://, mailto:) are left alone — CI must not
depend on network access. Exits non-zero listing every broken link.

Usage: python3 scripts/check_markdown_links.py [repo-root]
"""

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".github", "third_party", "node_modules"}

# Inline links: [text](target). Images share the syntax via ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def github_anchor(heading):
    """GitHub's heading -> anchor slug: lowercase, strip punctuation,
    spaces become dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as fh:
            text = CODE_FENCE_RE.sub("", fh.read())
        cache[path] = {github_anchor(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def check_file(md_path, root):
    errors = []
    with open(md_path, encoding="utf-8") as fh:
        text = CODE_FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"),
                                 fh.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        line = text.count("\n", 0, match.start()) + 1
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part))
            if not os.path.exists(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}:{line}: "
                              f"broken link target: {target}")
                continue
        else:
            resolved = md_path
        if anchor and resolved.endswith(".md"):
            if github_anchor(anchor) not in anchors_of(resolved):
                errors.append(f"{os.path.relpath(md_path, root)}:{line}: "
                              f"missing anchor: {target}")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    count = 0
    for md in markdown_files(root):
        count += 1
        errors.extend(check_file(md, root))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
