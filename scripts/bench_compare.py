#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and flag regressions.

Walks both documents in parallel and compares every numeric leaf whose
key names a performance measurement.  Direction is inferred from the key:

  * higher is better: ``mitems_per_s``, ``points_per_s``, ``speedup*``,
    ``*_per_s``;
  * lower is better: ``*_ns``, ``*_s``, ``*_seconds``;
  * everything else (shape fields like ``p``, ``trials``, ``supersteps``)
    is checked for equality and otherwise ignored.

A measurement regresses when it is worse than the baseline by more than
``--tolerance`` (a fraction; default 0.25 — wall-clock benches on shared
CI machines are noisy).  Improvements never fail the comparison.

Output is a machine-readable JSON verdict on stdout::

  {
    "baseline": "...", "candidate": "...", "tolerance": 0.25,
    "compared": 42, "regressed": 1, "improved": 3,
    "regressions": [{"path": "...", "base": ..., "cand": ...,
                     "ratio": ..., "direction": "higher_better"}],
    "verdict": "fail"
  }

Exit codes: 0 = no regressions, 1 = at least one regression,
2 = usage / unreadable input / nothing compared.  A comparison that
matches zero measurements is an ERROR, not a pass: a renamed bench key
or a stale baseline must fail the gate loudly instead of green-lighting
a regression it never looked at.

Usage:
  python3 scripts/bench_compare.py BASELINE.json CANDIDATE.json \
      [--tolerance 0.25] [--quiet] [--label NAME] [--require-key PATH]

``--label`` selects WHICH bench to compare and tags the verdict (JSON
``label`` field and the stderr summary).  The named section is resolved
in each document as, in order: a top-level key equal to the label
(``{"bench_contour": {...}}`` with ``--label bench_contour``); a
top-level object whose ``bench`` field equals the label (``--label
contour``); or the whole document when its own ``bench`` field matches.
If either file lacks the section, the script prints which one and exits
2 — a baseline that silently lacks the bench can no longer pass.
Without ``--label`` the whole documents are compared, but zero
comparable measurements still exits 2.

``--require-key`` (repeatable) names a dotted path — e.g.
``paths.avx2.speedup_vs_pr7`` — that must resolve in both selected
sections; a missing key exits 2.  Use it to pin the specific
measurements a gate exists for, so key renames cannot silently drop
them from the comparison.

Worked example — gate the E22 contour bench recorded in BENCH_pr9.json
against a fresh run (``bench_contour --out=cand.json`` wrapped as
``{"bench_contour": ...}``)::

  python3 scripts/bench_compare.py BENCH_pr9.json cand.json \
      --tolerance 0.5 --label contour \
      --require-key speedup_vs_pr7 > contour-verdict.json

The CI tier-1 job runs the same script with ``--label recost_batch``
against ``BENCH_pr7.json`` and ``--label contour`` against
``BENCH_pr9.json``; collected verdicts stay distinguishable by their
``label`` field.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HIGHER_BETTER_SUFFIXES = ("_per_s", "mitems_per_s", "points_per_s")
HIGHER_BETTER_PREFIXES = ("speedup",)
LOWER_BETTER_SUFFIXES = ("_ns", "_s", "_seconds")
# Shape/config fields: numeric but not measurements.
SHAPE_KEYS = {
    "p",
    "h",
    "m",
    "g",
    "L",
    "trials",
    "seeds",
    "supersteps",
    "points",
    "rounds",
    "fanout",
    "writes_per_proc",
    "hardware_threads",
    "threads",
    "flits_per_superstep",
    "requests_per_superstep",
}


def direction(key: str) -> str | None:
    """'higher_better' | 'lower_better' | None (not a measurement)."""
    if key in SHAPE_KEYS:
        return None
    if key.startswith(HIGHER_BETTER_PREFIXES) or key.endswith(
        HIGHER_BETTER_SUFFIXES
    ):
        return "higher_better"
    if key.endswith(LOWER_BETTER_SUFFIXES):
        return "lower_better"
    return None


def find_section(doc, label: str):
    """Resolve ``--label`` to the bench section of ``doc`` (or None).

    Resolution order: top-level key named ``label``; top-level object
    whose ``bench`` field equals ``label``; the document itself when its
    own ``bench`` field matches.
    """
    if not isinstance(doc, dict):
        return None
    if isinstance(doc.get(label), dict):
        return doc[label]
    for value in doc.values():
        if isinstance(value, dict) and value.get("bench") == label:
            return value
    if doc.get("bench") == label:
        return doc
    return None


def resolve_key(doc, dotted: str):
    """Follow a dotted path through nested dicts; None when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def walk(base, cand, path, out):
    """Collect comparable numeric leaves present in both documents."""
    if isinstance(base, dict) and isinstance(cand, dict):
        for key in base:
            if key in cand:
                walk(base[key], cand[key], f"{path}.{key}" if path else key, out)
        return
    if isinstance(base, list) and isinstance(cand, list):
        for i, (b, c) in enumerate(zip(base, cand)):
            walk(b, c, f"{path}[{i}]", out)
        return
    if isinstance(base, bool) or isinstance(cand, bool):
        return
    if isinstance(base, (int, float)) and isinstance(cand, (int, float)):
        key = path.rsplit(".", 1)[-1].split("[", 1)[0]
        out.append((path, key, float(base), float(cand)))


def compare(base: dict, cand: dict, tolerance: float) -> dict:
    leaves: list[tuple[str, str, float, float]] = []
    walk(base, cand, "", leaves)

    compared = 0
    improved = 0
    regressions = []
    shape_mismatches = []
    for path, key, b, c in leaves:
        d = direction(key)
        if d is None:
            if key in SHAPE_KEYS and b != c:
                shape_mismatches.append({"path": path, "base": b, "cand": c})
            continue
        compared += 1
        if b == 0:
            continue  # cannot form a ratio; skip rather than divide by zero
        # ratio > 1 means "worse than baseline" in either direction.
        ratio = b / c if d == "higher_better" else c / b
        if ratio > 1.0 + tolerance:
            regressions.append(
                {
                    "path": path,
                    "base": b,
                    "cand": c,
                    "ratio": ratio,
                    "direction": d,
                }
            )
        elif ratio < 1.0:
            improved += 1

    return {
        "tolerance": tolerance,
        "compared": compared,
        "regressed": len(regressions),
        "improved": improved,
        "regressions": regressions,
        "shape_mismatches": shape_mismatches,
        "verdict": "fail" if regressions else "pass",
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files; exit 1 on regression."
    )
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before a measurement counts as "
        "regressed (default 0.25)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the human summary on stderr (JSON still on stdout)",
    )
    parser.add_argument(
        "--label",
        default="",
        help="bench section to compare (top-level key, or a section whose "
        "'bench' field matches); also tags the verdict JSON and stderr "
        "summary. Missing in either file -> exit 2.",
    )
    parser.add_argument(
        "--require-key",
        action="append",
        default=[],
        metavar="PATH",
        help="dotted path that must resolve in both selected sections "
        "(repeatable); missing -> exit 2",
    )
    args = parser.parse_args()

    try:
        base = json.loads(args.baseline.read_text())
        cand = json.loads(args.candidate.read_text())
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"bench_compare: {e}\n")
        return 2

    if args.label:
        sections = {}
        for name, doc, file in (("baseline", base, args.baseline),
                                ("candidate", cand, args.candidate)):
            section = find_section(doc, args.label)
            if section is None:
                sys.stderr.write(
                    f"bench_compare: {name} {file} has no bench section "
                    f"matching label '{args.label}'\n"
                )
                return 2
            sections[name] = section
        base, cand = sections["baseline"], sections["candidate"]

    for dotted in args.require_key:
        for name, doc in (("baseline", base), ("candidate", cand)):
            if resolve_key(doc, dotted) is None:
                sys.stderr.write(
                    f"bench_compare: required key '{dotted}' missing from "
                    f"{name}\n"
                )
                return 2

    result = compare(base, cand, args.tolerance)
    result = {
        **({"label": args.label} if args.label else {}),
        "baseline": str(args.baseline),
        "candidate": str(args.candidate),
        **result,
    }
    json.dump(result, sys.stdout, indent=2)
    sys.stdout.write("\n")

    if result["compared"] == 0:
        sys.stderr.write(
            "bench_compare: no comparable measurements between "
            f"{args.baseline} and {args.candidate}"
            + (f" (label '{args.label}')" if args.label else "")
            + " — refusing to pass an empty comparison\n"
        )
        return 2

    if not args.quiet:
        tag = f" [{args.label}]" if args.label else ""
        sys.stderr.write(
            f"bench_compare{tag}: {result['compared']} measurements, "
            f"{result['regressed']} regressed, {result['improved']} improved "
            f"(tolerance {args.tolerance:.0%}) -> {result['verdict']}\n"
        )
        for r in result["regressions"]:
            sys.stderr.write(
                f"  REGRESSED {r['path']}: {r['base']:g} -> {r['cand']:g} "
                f"({r['ratio']:.2f}x worse, {r['direction']})\n"
            )
    return 1 if result["verdict"] == "fail" else 0


if __name__ == "__main__":
    sys.exit(main())
