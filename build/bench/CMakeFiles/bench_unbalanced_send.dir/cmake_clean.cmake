file(REMOVE_RECURSE
  "CMakeFiles/bench_unbalanced_send.dir/bench_unbalanced_send.cpp.o"
  "CMakeFiles/bench_unbalanced_send.dir/bench_unbalanced_send.cpp.o.d"
  "bench_unbalanced_send"
  "bench_unbalanced_send.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unbalanced_send.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
