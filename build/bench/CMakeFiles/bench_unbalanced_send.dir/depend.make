# Empty dependencies file for bench_unbalanced_send.
# This may be replaced when dependencies are built.
