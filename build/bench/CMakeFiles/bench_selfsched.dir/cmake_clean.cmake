file(REMOVE_RECURSE
  "CMakeFiles/bench_selfsched.dir/bench_selfsched.cpp.o"
  "CMakeFiles/bench_selfsched.dir/bench_selfsched.cpp.o.d"
  "bench_selfsched"
  "bench_selfsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_selfsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
