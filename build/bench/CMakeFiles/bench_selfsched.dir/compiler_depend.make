# Empty compiler generated dependencies file for bench_selfsched.
# This may be replaced when dependencies are built.
