# Empty dependencies file for bench_hrelation_crcw.
# This may be replaced when dependencies are built.
