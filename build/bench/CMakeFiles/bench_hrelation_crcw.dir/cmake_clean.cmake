file(REMOVE_RECURSE
  "CMakeFiles/bench_hrelation_crcw.dir/bench_hrelation_crcw.cpp.o"
  "CMakeFiles/bench_hrelation_crcw.dir/bench_hrelation_crcw.cpp.o.d"
  "bench_hrelation_crcw"
  "bench_hrelation_crcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hrelation_crcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
