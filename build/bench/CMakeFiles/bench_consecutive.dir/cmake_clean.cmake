file(REMOVE_RECURSE
  "CMakeFiles/bench_consecutive.dir/bench_consecutive.cpp.o"
  "CMakeFiles/bench_consecutive.dir/bench_consecutive.cpp.o.d"
  "bench_consecutive"
  "bench_consecutive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consecutive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
