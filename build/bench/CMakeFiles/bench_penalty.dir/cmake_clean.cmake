file(REMOVE_RECURSE
  "CMakeFiles/bench_penalty.dir/bench_penalty.cpp.o"
  "CMakeFiles/bench_penalty.dir/bench_penalty.cpp.o.d"
  "bench_penalty"
  "bench_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
