# Empty dependencies file for bench_penalty.
# This may be replaced when dependencies are built.
