file(REMOVE_RECURSE
  "CMakeFiles/bench_count_n.dir/bench_count_n.cpp.o"
  "CMakeFiles/bench_count_n.dir/bench_count_n.cpp.o.d"
  "bench_count_n"
  "bench_count_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_count_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
