# Empty dependencies file for bench_count_n.
# This may be replaced when dependencies are built.
