# Empty compiler generated dependencies file for bench_list_ranking.
# This may be replaced when dependencies are built.
