# Empty compiler generated dependencies file for bench_concurrent_read.
# This may be replaced when dependencies are built.
