file(REMOVE_RECURSE
  "CMakeFiles/bench_concurrent_read.dir/bench_concurrent_read.cpp.o"
  "CMakeFiles/bench_concurrent_read.dir/bench_concurrent_read.cpp.o.d"
  "bench_concurrent_read"
  "bench_concurrent_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrent_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
