file(REMOVE_RECURSE
  "CMakeFiles/bench_long_messages.dir/bench_long_messages.cpp.o"
  "CMakeFiles/bench_long_messages.dir/bench_long_messages.cpp.o.d"
  "bench_long_messages"
  "bench_long_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_long_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
