# Empty compiler generated dependencies file for bench_long_messages.
# This may be replaced when dependencies are built.
