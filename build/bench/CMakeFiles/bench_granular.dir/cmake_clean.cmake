file(REMOVE_RECURSE
  "CMakeFiles/bench_granular.dir/bench_granular.cpp.o"
  "CMakeFiles/bench_granular.dir/bench_granular.cpp.o.d"
  "bench_granular"
  "bench_granular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_granular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
