# Empty compiler generated dependencies file for bench_granular.
# This may be replaced when dependencies are built.
