file(REMOVE_RECURSE
  "CMakeFiles/pbw_engine.dir/machine.cpp.o"
  "CMakeFiles/pbw_engine.dir/machine.cpp.o.d"
  "CMakeFiles/pbw_engine.dir/thread_pool.cpp.o"
  "CMakeFiles/pbw_engine.dir/thread_pool.cpp.o.d"
  "libpbw_engine.a"
  "libpbw_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
