file(REMOVE_RECURSE
  "libpbw_engine.a"
)
