# Empty compiler generated dependencies file for pbw_engine.
# This may be replaced when dependencies are built.
