# Empty dependencies file for pbw_aqt.
# This may be replaced when dependencies are built.
