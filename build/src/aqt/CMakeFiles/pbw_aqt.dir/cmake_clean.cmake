file(REMOVE_RECURSE
  "CMakeFiles/pbw_aqt.dir/adversary.cpp.o"
  "CMakeFiles/pbw_aqt.dir/adversary.cpp.o.d"
  "CMakeFiles/pbw_aqt.dir/dynamic.cpp.o"
  "CMakeFiles/pbw_aqt.dir/dynamic.cpp.o.d"
  "CMakeFiles/pbw_aqt.dir/sliding.cpp.o"
  "CMakeFiles/pbw_aqt.dir/sliding.cpp.o.d"
  "libpbw_aqt.a"
  "libpbw_aqt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_aqt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
