file(REMOVE_RECURSE
  "libpbw_aqt.a"
)
