file(REMOVE_RECURSE
  "CMakeFiles/pbw_algos.dir/broadcast.cpp.o"
  "CMakeFiles/pbw_algos.dir/broadcast.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/columnsort.cpp.o"
  "CMakeFiles/pbw_algos.dir/columnsort.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/gossip.cpp.o"
  "CMakeFiles/pbw_algos.dir/gossip.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/list_ranking.cpp.o"
  "CMakeFiles/pbw_algos.dir/list_ranking.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/one_to_all.cpp.o"
  "CMakeFiles/pbw_algos.dir/one_to_all.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/prefix.cpp.o"
  "CMakeFiles/pbw_algos.dir/prefix.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/reduce.cpp.o"
  "CMakeFiles/pbw_algos.dir/reduce.cpp.o.d"
  "CMakeFiles/pbw_algos.dir/sorting.cpp.o"
  "CMakeFiles/pbw_algos.dir/sorting.cpp.o.d"
  "libpbw_algos.a"
  "libpbw_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
