
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/broadcast.cpp" "src/algos/CMakeFiles/pbw_algos.dir/broadcast.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/broadcast.cpp.o.d"
  "/root/repo/src/algos/columnsort.cpp" "src/algos/CMakeFiles/pbw_algos.dir/columnsort.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/columnsort.cpp.o.d"
  "/root/repo/src/algos/gossip.cpp" "src/algos/CMakeFiles/pbw_algos.dir/gossip.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/gossip.cpp.o.d"
  "/root/repo/src/algos/list_ranking.cpp" "src/algos/CMakeFiles/pbw_algos.dir/list_ranking.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/list_ranking.cpp.o.d"
  "/root/repo/src/algos/one_to_all.cpp" "src/algos/CMakeFiles/pbw_algos.dir/one_to_all.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/one_to_all.cpp.o.d"
  "/root/repo/src/algos/prefix.cpp" "src/algos/CMakeFiles/pbw_algos.dir/prefix.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/prefix.cpp.o.d"
  "/root/repo/src/algos/reduce.cpp" "src/algos/CMakeFiles/pbw_algos.dir/reduce.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/reduce.cpp.o.d"
  "/root/repo/src/algos/sorting.cpp" "src/algos/CMakeFiles/pbw_algos.dir/sorting.cpp.o" "gcc" "src/algos/CMakeFiles/pbw_algos.dir/sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pbw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
