# Empty compiler generated dependencies file for pbw_algos.
# This may be replaced when dependencies are built.
