file(REMOVE_RECURSE
  "libpbw_algos.a"
)
