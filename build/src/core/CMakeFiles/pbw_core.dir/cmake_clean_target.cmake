file(REMOVE_RECURSE
  "libpbw_core.a"
)
