file(REMOVE_RECURSE
  "CMakeFiles/pbw_core.dir/bounds.cpp.o"
  "CMakeFiles/pbw_core.dir/bounds.cpp.o.d"
  "CMakeFiles/pbw_core.dir/model/models.cpp.o"
  "CMakeFiles/pbw_core.dir/model/models.cpp.o.d"
  "CMakeFiles/pbw_core.dir/trace_report.cpp.o"
  "CMakeFiles/pbw_core.dir/trace_report.cpp.o.d"
  "libpbw_core.a"
  "libpbw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
