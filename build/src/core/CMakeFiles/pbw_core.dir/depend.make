# Empty dependencies file for pbw_core.
# This may be replaced when dependencies are built.
