
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/pbw_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/pbw_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/model/models.cpp" "src/core/CMakeFiles/pbw_core.dir/model/models.cpp.o" "gcc" "src/core/CMakeFiles/pbw_core.dir/model/models.cpp.o.d"
  "/root/repo/src/core/trace_report.cpp" "src/core/CMakeFiles/pbw_core.dir/trace_report.cpp.o" "gcc" "src/core/CMakeFiles/pbw_core.dir/trace_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pbw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
