file(REMOVE_RECURSE
  "libpbw_pram.a"
)
