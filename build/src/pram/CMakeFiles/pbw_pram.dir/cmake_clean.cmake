file(REMOVE_RECURSE
  "CMakeFiles/pbw_pram.dir/cr_sim.cpp.o"
  "CMakeFiles/pbw_pram.dir/cr_sim.cpp.o.d"
  "CMakeFiles/pbw_pram.dir/h_relation.cpp.o"
  "CMakeFiles/pbw_pram.dir/h_relation.cpp.o.d"
  "CMakeFiles/pbw_pram.dir/leader.cpp.o"
  "CMakeFiles/pbw_pram.dir/leader.cpp.o.d"
  "CMakeFiles/pbw_pram.dir/pram.cpp.o"
  "CMakeFiles/pbw_pram.dir/pram.cpp.o.d"
  "libpbw_pram.a"
  "libpbw_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
