
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pram/cr_sim.cpp" "src/pram/CMakeFiles/pbw_pram.dir/cr_sim.cpp.o" "gcc" "src/pram/CMakeFiles/pbw_pram.dir/cr_sim.cpp.o.d"
  "/root/repo/src/pram/h_relation.cpp" "src/pram/CMakeFiles/pbw_pram.dir/h_relation.cpp.o" "gcc" "src/pram/CMakeFiles/pbw_pram.dir/h_relation.cpp.o.d"
  "/root/repo/src/pram/leader.cpp" "src/pram/CMakeFiles/pbw_pram.dir/leader.cpp.o" "gcc" "src/pram/CMakeFiles/pbw_pram.dir/leader.cpp.o.d"
  "/root/repo/src/pram/pram.cpp" "src/pram/CMakeFiles/pbw_pram.dir/pram.cpp.o" "gcc" "src/pram/CMakeFiles/pbw_pram.dir/pram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pbw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/pbw_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/algos/CMakeFiles/pbw_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
