# Empty compiler generated dependencies file for pbw_pram.
# This may be replaced when dependencies are built.
