# Empty dependencies file for pbw_util.
# This may be replaced when dependencies are built.
