file(REMOVE_RECURSE
  "libpbw_util.a"
)
