file(REMOVE_RECURSE
  "CMakeFiles/pbw_util.dir/cli.cpp.o"
  "CMakeFiles/pbw_util.dir/cli.cpp.o.d"
  "CMakeFiles/pbw_util.dir/histogram.cpp.o"
  "CMakeFiles/pbw_util.dir/histogram.cpp.o.d"
  "CMakeFiles/pbw_util.dir/rng.cpp.o"
  "CMakeFiles/pbw_util.dir/rng.cpp.o.d"
  "CMakeFiles/pbw_util.dir/stats.cpp.o"
  "CMakeFiles/pbw_util.dir/stats.cpp.o.d"
  "CMakeFiles/pbw_util.dir/table.cpp.o"
  "CMakeFiles/pbw_util.dir/table.cpp.o.d"
  "CMakeFiles/pbw_util.dir/zipf.cpp.o"
  "CMakeFiles/pbw_util.dir/zipf.cpp.o.d"
  "libpbw_util.a"
  "libpbw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
