file(REMOVE_RECURSE
  "libpbw_sched.a"
)
