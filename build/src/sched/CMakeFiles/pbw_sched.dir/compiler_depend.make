# Empty compiler generated dependencies file for pbw_sched.
# This may be replaced when dependencies are built.
