file(REMOVE_RECURSE
  "CMakeFiles/pbw_sched.dir/count_n.cpp.o"
  "CMakeFiles/pbw_sched.dir/count_n.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/qsm_routing.cpp.o"
  "CMakeFiles/pbw_sched.dir/qsm_routing.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/relation.cpp.o"
  "CMakeFiles/pbw_sched.dir/relation.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/runner.cpp.o"
  "CMakeFiles/pbw_sched.dir/runner.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/schedule.cpp.o"
  "CMakeFiles/pbw_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/senders.cpp.o"
  "CMakeFiles/pbw_sched.dir/senders.cpp.o.d"
  "CMakeFiles/pbw_sched.dir/workloads.cpp.o"
  "CMakeFiles/pbw_sched.dir/workloads.cpp.o.d"
  "libpbw_sched.a"
  "libpbw_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbw_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
