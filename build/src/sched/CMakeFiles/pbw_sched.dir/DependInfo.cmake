
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/count_n.cpp" "src/sched/CMakeFiles/pbw_sched.dir/count_n.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/count_n.cpp.o.d"
  "/root/repo/src/sched/qsm_routing.cpp" "src/sched/CMakeFiles/pbw_sched.dir/qsm_routing.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/qsm_routing.cpp.o.d"
  "/root/repo/src/sched/relation.cpp" "src/sched/CMakeFiles/pbw_sched.dir/relation.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/relation.cpp.o.d"
  "/root/repo/src/sched/runner.cpp" "src/sched/CMakeFiles/pbw_sched.dir/runner.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/runner.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/pbw_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/senders.cpp" "src/sched/CMakeFiles/pbw_sched.dir/senders.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/senders.cpp.o.d"
  "/root/repo/src/sched/workloads.cpp" "src/sched/CMakeFiles/pbw_sched.dir/workloads.cpp.o" "gcc" "src/sched/CMakeFiles/pbw_sched.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pbw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pbw_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pbw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
