file(REMOVE_RECURSE
  "CMakeFiles/bus_network.dir/bus_network.cpp.o"
  "CMakeFiles/bus_network.dir/bus_network.cpp.o.d"
  "bus_network"
  "bus_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
