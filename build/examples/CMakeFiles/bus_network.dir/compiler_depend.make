# Empty compiler generated dependencies file for bus_network.
# This may be replaced when dependencies are built.
