# Empty compiler generated dependencies file for cost_anatomy.
# This may be replaced when dependencies are built.
