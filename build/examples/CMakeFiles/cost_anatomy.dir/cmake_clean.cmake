file(REMOVE_RECURSE
  "CMakeFiles/cost_anatomy.dir/cost_anatomy.cpp.o"
  "CMakeFiles/cost_anatomy.dir/cost_anatomy.cpp.o.d"
  "cost_anatomy"
  "cost_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
