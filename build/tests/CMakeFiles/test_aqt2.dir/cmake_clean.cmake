file(REMOVE_RECURSE
  "CMakeFiles/test_aqt2.dir/test_aqt2.cpp.o"
  "CMakeFiles/test_aqt2.dir/test_aqt2.cpp.o.d"
  "test_aqt2"
  "test_aqt2.pdb"
  "test_aqt2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aqt2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
