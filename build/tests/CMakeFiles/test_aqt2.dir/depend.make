# Empty dependencies file for test_aqt2.
# This may be replaced when dependencies are built.
