# Empty compiler generated dependencies file for test_sched2.
# This may be replaced when dependencies are built.
