file(REMOVE_RECURSE
  "CMakeFiles/test_sched2.dir/test_sched2.cpp.o"
  "CMakeFiles/test_sched2.dir/test_sched2.cpp.o.d"
  "test_sched2"
  "test_sched2.pdb"
  "test_sched2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
