# Empty dependencies file for test_aqt.
# This may be replaced when dependencies are built.
