file(REMOVE_RECURSE
  "CMakeFiles/test_aqt.dir/test_aqt.cpp.o"
  "CMakeFiles/test_aqt.dir/test_aqt.cpp.o.d"
  "test_aqt"
  "test_aqt.pdb"
  "test_aqt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aqt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
