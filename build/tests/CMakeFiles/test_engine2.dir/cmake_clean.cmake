file(REMOVE_RECURSE
  "CMakeFiles/test_engine2.dir/test_engine2.cpp.o"
  "CMakeFiles/test_engine2.dir/test_engine2.cpp.o.d"
  "test_engine2"
  "test_engine2.pdb"
  "test_engine2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
