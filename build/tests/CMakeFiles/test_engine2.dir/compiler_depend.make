# Empty compiler generated dependencies file for test_engine2.
# This may be replaced when dependencies are built.
