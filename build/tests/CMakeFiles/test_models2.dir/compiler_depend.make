# Empty compiler generated dependencies file for test_models2.
# This may be replaced when dependencies are built.
