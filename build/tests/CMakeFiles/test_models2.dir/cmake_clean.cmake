file(REMOVE_RECURSE
  "CMakeFiles/test_models2.dir/test_models2.cpp.o"
  "CMakeFiles/test_models2.dir/test_models2.cpp.o.d"
  "test_models2"
  "test_models2.pdb"
  "test_models2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
