# Empty dependencies file for test_pram2.
# This may be replaced when dependencies are built.
