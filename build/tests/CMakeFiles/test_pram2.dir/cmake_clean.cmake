file(REMOVE_RECURSE
  "CMakeFiles/test_pram2.dir/test_pram2.cpp.o"
  "CMakeFiles/test_pram2.dir/test_pram2.cpp.o.d"
  "test_pram2"
  "test_pram2.pdb"
  "test_pram2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pram2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
