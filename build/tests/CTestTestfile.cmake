# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_bounds[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_algos[1]_include.cmake")
include("/root/repo/build/tests/test_pram[1]_include.cmake")
include("/root/repo/build/tests/test_aqt[1]_include.cmake")
include("/root/repo/build/tests/test_algos2[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_sched2[1]_include.cmake")
include("/root/repo/build/tests/test_engine2[1]_include.cmake")
include("/root/repo/build/tests/test_pram2[1]_include.cmake")
include("/root/repo/build/tests/test_aqt2[1]_include.cmake")
include("/root/repo/build/tests/test_models2[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
